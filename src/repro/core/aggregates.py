"""Aggregate accumulators shared by the executor and the fragment interpreter.

Each :class:`~repro.core.logical.AggregateCall` maps to one accumulator
instance per group. SQL semantics: aggregates ignore NULL inputs; SUM/AVG/
MIN/MAX over an empty (or all-NULL) group yield NULL, COUNT yields 0.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Set

from ..errors import ExecutionError
from .logical import AggregateCall


class Accumulator:
    """Incremental aggregate state. ``add`` sees already-evaluated argument
    values (or a dummy for COUNT(*)).

    ``add_many``/``add_repeat`` are the bulk entry points the bucketed
    aggregation path uses: one call per (group, page) instead of one
    ``add`` per row. Every override MUST be observation-equivalent to the
    ``add`` loop **in the same value order** — for float SUM/AVG that
    means actually accumulating left-to-right (addition is not
    associative), so partial sums are never formed and results stay
    bit-identical to the row engine.
    """

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def add_many(self, values: Sequence[Any]) -> None:
        """Fold a run of argument values, in order (bulk ``add``)."""
        add = self.add
        for value in values:
            add(value)

    def add_repeat(self, count: int) -> None:
        """Fold ``count`` argument-less rows (the COUNT(*) bulk path)."""
        add = self.add
        for _ in range(count):
            add(1)


class _CountStar(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        self.count += len(values)

    def add_repeat(self, count: int) -> None:
        self.count += count

    def result(self) -> Any:
        return self.count


class _Count(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        # list.count(None) runs in C; arrays cannot hold None at all.
        self.count += len(values) - values.count(None)

    def result(self) -> Any:
        return self.count


class _Sum(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def add_many(self, values: Sequence[Any]) -> None:
        # Left-to-right accumulation over a local: same additions in the
        # same order as the add() loop (bit-identical for floats), minus
        # the per-row attribute traffic.
        total = self.total
        for value in values:
            if value is not None:
                total = value if total is None else total + value
        self.total = total

    def result(self) -> Any:
        return self.total


class _Avg(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        total = self.total
        count = self.count
        for value in values:
            if value is not None:
                total += value
                count += 1
        self.total = total
        self.count = count

    def result(self) -> Any:
        return self.total / self.count if self.count else None


class _Min(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def add_many(self, values: Sequence[Any]) -> None:
        # min() is order-insensitive (total order over non-null values of
        # one column type), so the C-speed builtin gives the same result
        # as the add() loop.
        candidates = [value for value in values if value is not None]
        if candidates:
            best = min(candidates)
            if self.best is None or best < self.best:
                self.best = best

    def result(self) -> Any:
        return self.best


class _Max(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def add_many(self, values: Sequence[Any]) -> None:
        candidates = [value for value in values if value is not None]
        if candidates:
            best = max(candidates)
            if self.best is None or best > self.best:
                self.best = best

    def result(self) -> Any:
        return self.best


class _Distinct(Accumulator):
    """DISTINCT wrapper: forwards each distinct non-null value once."""

    def __init__(self, inner: Accumulator) -> None:
        self.inner = inner
        self.seen: Set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


_FACTORIES: dict = {
    "COUNT": _Count,
    "SUM": _Sum,
    "AVG": _Avg,
    "MIN": _Min,
    "MAX": _Max,
}


def make_accumulator(call: AggregateCall) -> Accumulator:
    """Fresh accumulator for one aggregate call (one group's state)."""
    if call.argument is None:
        if call.function != "COUNT":
            raise ExecutionError(f"{call.function}(*) is not a valid aggregate")
        return _CountStar()
    factory = _FACTORIES.get(call.function)
    if factory is None:
        raise ExecutionError(f"unknown aggregate function: {call.function}")
    inner = factory()
    return _Distinct(inner) if call.distinct else inner


def sort_key_function(ascending: bool) -> Callable[[Any], Any]:
    """Key wrapper implementing NULLS LAST (ASC) / NULLS FIRST (DESC).

    Groups NULLs via the first tuple element so the raw values of different
    rows never compare against None.
    """

    def key(value: Any) -> Any:
        return (value is None, 0 if value is None else value)

    return key


def sort_rows(
    rows: List[tuple],
    key_functions: List[Callable[[tuple], Any]],
    directions: List[bool],
) -> List[tuple]:
    """Stable multi-key sort honoring per-key direction and NULL placement.

    Applies single-key stable sorts from the least significant key to the
    most significant — the classic way to get mixed ASC/DESC ordering out of
    a stable sort.
    """
    result = list(rows)
    for key_fn, ascending in reversed(list(zip(key_functions, directions))):
        wrapper = sort_key_function(ascending)
        result.sort(key=lambda row: wrapper(key_fn(row)), reverse=not ascending)
    return result

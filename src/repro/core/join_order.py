"""Cost-based join ordering.

Operates on *join regions*: maximal trees of INNER/CROSS joins (anything
else — outer/semi joins, aggregates, remote boundaries — is a leaf
relation). Three strategies, compared head-to-head by experiments T2/F3:

* ``canonical`` — the user's textual order, left-deep (the no-optimizer
  baseline);
* ``greedy`` — Greedy Operator Ordering: repeatedly join the connected pair
  with the cheapest result (polynomial time);
* ``dp`` — bushy dynamic programming over connected subsets (Selinger-style
  with DPsub enumeration), exponential but optimal under the cost model.

The cost model is *distribution-aware*: a subset whose relations all live on
one join-capable source stays "located" there (its join will be pushed
down), and shipping is charged exactly when a subset first needs the
mediator — so the chosen order also maximizes later fragment pushdown.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..catalog.catalog import Catalog
from ..errors import PlanError
from ..sql import ast
from .cardinality import Estimator
from .cost import CostModel
from .logical import (
    FilterOp,
    JoinOp,
    LogicalPlan,
    ProjectOp,
    ScanOp,
    transform_plan,
)

#: Regions larger than this fall back from DP to greedy.
DEFAULT_DP_LIMIT = 10

JOIN_STRATEGIES = ("dp", "greedy", "canonical", "auto")


@dataclass
class OrderingStats:
    """Diagnostics from the last ordering run (read by benchmarks)."""

    strategy: str = "canonical"
    relations: int = 0
    subsets_enumerated: int = 0
    estimated_rows: float = 0.0
    estimated_cost_ms: float = 0.0


class JoinOrderer:
    """Reorders every join region of a plan with the configured strategy."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: Estimator,
        cost_model: CostModel,
        strategy: str = "auto",
        dp_limit: int = DEFAULT_DP_LIMIT,
    ) -> None:
        if strategy not in JOIN_STRATEGIES:
            raise PlanError(f"unknown join-order strategy {strategy!r}")
        self._catalog = catalog
        self._estimator = estimator
        self._cost = cost_model
        self._strategy = strategy
        self._dp_limit = dp_limit
        self.last_stats = OrderingStats()

    # -- public ---------------------------------------------------------------

    def reorder(self, plan: LogicalPlan) -> LogicalPlan:
        """Reorder all join regions (bottom-up, so nested regions settle first)."""

        def visit(node: LogicalPlan) -> Optional[LogicalPlan]:
            if isinstance(node, JoinOp) and node.kind in ("INNER", "CROSS"):
                # Only fire at the *top* of a region; the transform is
                # bottom-up, so detect whether our parent will also fire by
                # leaving inner joins to the outermost call.
                return None
            # For each child that is an inner-join region head, reorder it.
            children = node.children()
            new_children = [self._maybe_reorder_region(c) for c in children]
            if all(n is o for n, o in zip(new_children, children)):
                return None
            return node.with_children(new_children)

        reordered = transform_plan(plan, visit)
        return self._maybe_reorder_region(reordered)

    # -- region handling -----------------------------------------------------

    def _maybe_reorder_region(self, plan: LogicalPlan) -> LogicalPlan:
        if not (isinstance(plan, JoinOp) and plan.kind in ("INNER", "CROSS")):
            return plan
        relations: List[LogicalPlan] = []
        predicates: List[ast.Expr] = []
        _flatten(plan, relations, predicates)
        if len(relations) < 2:
            return plan
        strategy = self._strategy
        if strategy == "auto":
            strategy = "dp" if len(relations) <= self._dp_limit else "greedy"
        if strategy == "dp" and len(relations) > self._dp_limit:
            strategy = "greedy"
        context = _RegionContext(
            relations, predicates, self._catalog, self._estimator, self._cost
        )
        self.last_stats = OrderingStats(strategy=strategy, relations=len(relations))
        if strategy == "canonical":
            order = list(range(len(relations)))
            tree = context.left_deep_tree(order)
        elif strategy == "greedy":
            tree = self._greedy(context)
        else:
            tree = self._dp(context)
        self.last_stats.estimated_rows = context.set_rows(
            frozenset(range(len(relations)))
        )
        return context.attach_remaining(tree)

    # -- strategies ------------------------------------------------------------

    def _greedy(self, context: "_RegionContext") -> "_Tree":
        components: List[_Tree] = [
            context.leaf(index) for index in range(len(context.relations))
        ]
        while len(components) > 1:
            pairs = list(itertools.combinations(range(len(components)), 2))
            connected_pairs = [
                (i, j)
                for i, j in pairs
                if context.connected(components[i].members, components[j].members)
            ]
            pool = connected_pairs or pairs
            i, j = min(
                pool,
                key=lambda pair: context.set_rows(
                    components[pair[0]].members | components[pair[1]].members
                ),
            )
            merged = context.join_trees(components[i], components[j])
            components = [
                c for k, c in enumerate(components) if k not in (i, j)
            ] + [merged]
        self.last_stats.subsets_enumerated = len(context.relations)
        return components[0]

    def _dp(self, context: "_RegionContext") -> "_Tree":
        n = len(context.relations)
        best: Dict[FrozenSet[int], _Tree] = {}
        for index in range(n):
            leaf = context.leaf(index)
            best[leaf.members] = leaf
        enumerated = 0
        full = frozenset(range(n))
        for size in range(2, n + 1):
            for subset_tuple in itertools.combinations(range(n), size):
                subset = frozenset(subset_tuple)
                best_tree: Optional[_Tree] = None
                # Enumerate proper subset splits; symmetric halves visited once.
                members = list(subset)
                for mask in range(1, 2 ** (len(members) - 1)):
                    left = frozenset(
                        members[k] for k in range(len(members)) if mask >> k & 1
                    )
                    right = subset - left
                    left_tree = best.get(left)
                    right_tree = best.get(right)
                    if left_tree is None or right_tree is None:
                        continue
                    if subset != full and not context.connected(left, right):
                        # Avoid cross products except when forced at the top.
                        if context.has_connection_inside(subset):
                            continue
                    enumerated += 1
                    candidate = context.join_trees(left_tree, right_tree)
                    if best_tree is None or candidate.cost < best_tree.cost:
                        best_tree = candidate
                if best_tree is not None:
                    best[subset] = best_tree
        self.last_stats.subsets_enumerated = enumerated
        result = best.get(full)
        if result is None:  # disconnected graph: fall back to greedy
            return self._greedy(context)
        self.last_stats.estimated_cost_ms = result.cost
        return result


# ---------------------------------------------------------------------------
# region context
# ---------------------------------------------------------------------------


@dataclass
class _Tree:
    """A candidate join tree over a subset of region relations."""

    plan: LogicalPlan
    members: FrozenSet[int]
    rows: float
    cost: float
    location: Optional[str]  # source name if still source-located
    applied: FrozenSet[int]  # indexes of predicates already attached


class _RegionContext:
    """Shared estimation state for one join region."""

    def __init__(
        self,
        relations: List[LogicalPlan],
        predicates: List[ast.Expr],
        catalog: Catalog,
        estimator: Estimator,
        cost_model: CostModel,
    ) -> None:
        self.relations = relations
        self.predicates = predicates
        self._catalog = catalog
        self._estimator = estimator
        self._cost = cost_model
        self._rel_rows = [max(estimator.estimate_rows(r), 1.0) for r in relations]
        self._rel_width = [
            estimator.estimate_width(r.output_columns) for r in relations
        ]
        self._rel_location = [self._locate(r) for r in relations]
        self._column_owner: Dict[int, int] = {}
        for index, relation in enumerate(relations):
            for column in relation.output_columns:
                self._column_owner[column.column_id] = index
        # Predicate → relations it touches; equi-edges get NDV estimates.
        self._pred_rels: List[FrozenSet[int]] = []
        self._pred_denominator: List[float] = []
        for predicate in predicates:
            touched = frozenset(
                self._column_owner[c.column_id]
                for c in ast.referenced_columns(predicate)
                if c.column_id in self._column_owner
            )
            self._pred_rels.append(touched)
            self._pred_denominator.append(self._edge_denominator(predicate, touched))
        self._rows_cache: Dict[FrozenSet[int], float] = {}

    # -- location ---------------------------------------------------------

    def _locate(self, relation: LogicalPlan) -> Optional[str]:
        sources: Set[str] = set()
        for node in relation.walk():
            if isinstance(node, ScanOp):
                sources.add(node.source_name.lower())
            elif not isinstance(node, (FilterOp, ProjectOp)):
                return None  # complex leaves execute at the mediator
        if len(sources) != 1:
            return None
        (source,) = sources
        if not self._catalog.has_source(source):
            return None
        if not self._catalog.source(source).capabilities().joins:
            return None
        return source

    # -- cardinalities ---------------------------------------------------------

    def set_rows(self, subset: FrozenSet[int]) -> float:
        cached = self._rows_cache.get(subset)
        if cached is not None:
            return cached
        rows = 1.0
        for index in subset:
            rows *= self._rel_rows[index]
        for touched, denominator in zip(self._pred_rels, self._pred_denominator):
            if len(touched) >= 2 and touched <= subset:
                rows /= denominator
        rows = max(rows, 1.0)
        self._rows_cache[subset] = rows
        return rows

    def _edge_denominator(self, predicate: ast.Expr, touched: FrozenSet[int]) -> float:
        if len(touched) < 2:
            return 1.0
        if isinstance(predicate, ast.BinaryOp) and predicate.op == "=":
            sides = []
            for side in (predicate.left, predicate.right):
                columns = ast.referenced_columns(side)
                if len(columns) == 1:
                    owner = self._column_owner.get(columns[0].column_id)
                    if owner is not None:
                        sides.append(
                            self._estimator.column_ndv(
                                columns[0], self._rel_rows[owner]
                            )
                        )
            if len(sides) == 2:
                return max(sides[0], sides[1], 1.0)
        return 1.0 / 0.1  # generic predicate: selectivity 0.1

    # -- connectivity ---------------------------------------------------------

    def connected(self, left: FrozenSet[int], right: FrozenSet[int]) -> bool:
        union = left | right
        for touched in self._pred_rels:
            if (
                len(touched) >= 2
                and touched <= union
                and touched & left
                and touched & right
            ):
                return True
        return False

    def has_connection_inside(self, subset: FrozenSet[int]) -> bool:
        for touched in self._pred_rels:
            if len(touched) >= 2 and touched <= subset:
                return True
        return False

    # -- tree construction ---------------------------------------------------------

    def leaf(self, index: int) -> _Tree:
        applied = frozenset(
            p for p, touched in enumerate(self._pred_rels) if touched <= {index}
        )
        plan = self.relations[index]
        for p in sorted(applied):
            plan = FilterOp(plan, self.predicates[p])
        return _Tree(
            plan=plan,
            members=frozenset([index]),
            rows=self._rel_rows[index],
            cost=0.0,
            location=self._rel_location[index],
            applied=applied,
        )

    def join_trees(self, left: _Tree, right: _Tree) -> _Tree:
        members = left.members | right.members
        rows = self.set_rows(members)
        # Predicates newly applicable at this join.
        newly = [
            p
            for p, touched in enumerate(self._pred_rels)
            if touched <= members
            and p not in left.applied
            and p not in right.applied
            and len(touched) >= 2
        ]
        condition = ast.conjoin([self.predicates[p] for p in newly])
        kind = "INNER" if condition is not None else "CROSS"
        same_source = (
            left.location is not None and left.location == right.location
        )
        cost = left.cost + right.cost
        if same_source:
            location = left.location
            cost += (left.rows + right.rows) * self._cost.cpu_row_ms * 0.2
        else:
            location = None
            cost += self._ship_cost(left) + self._ship_cost(right)
            cost += self._cost.hash_join(
                min(left.rows, right.rows), max(left.rows, right.rows), rows
            ).total_ms
        plan = JoinOp(left.plan, right.plan, kind, condition)
        return _Tree(
            plan=plan,
            members=members,
            rows=rows,
            cost=cost,
            location=location,
            applied=left.applied | right.applied | frozenset(newly),
        )

    def _ship_cost(self, tree: _Tree) -> float:
        if tree.location is None:
            return 0.0  # already at the mediator; its cost was charged
        width = self._estimator.estimate_width(tree.plan.output_columns)
        caps = self._catalog.source(tree.location).capabilities()
        return self._cost.transfer_bytes(
            tree.location, tree.rows, tree.rows * width, caps.page_rows
        ).total_ms

    def left_deep_tree(self, order: Sequence[int]) -> _Tree:
        tree = self.leaf(order[0])
        for index in order[1:]:
            tree = self.join_trees(tree, self.leaf(index))
        return tree

    def attach_remaining(self, tree: _Tree) -> LogicalPlan:
        """Apply any predicates never absorbed by a join (safety net)."""
        missing = [
            self.predicates[p]
            for p in range(len(self.predicates))
            if p not in tree.applied
        ]
        plan = tree.plan
        condition = ast.conjoin(missing)
        if condition is not None:
            plan = FilterOp(plan, condition)
        return plan


def _flatten(
    plan: LogicalPlan, relations: List[LogicalPlan], predicates: List[ast.Expr]
) -> None:
    """Flatten an INNER/CROSS join tree into relations and predicates."""
    if isinstance(plan, JoinOp) and plan.kind in ("INNER", "CROSS"):
        _flatten(plan.left, relations, predicates)
        _flatten(plan.right, relations, predicates)
        if plan.condition is not None:
            predicates.extend(ast.conjuncts(plan.condition))
        return
    if isinstance(plan, FilterOp):
        # A filter directly over a nested join region: flatten through it.
        child = plan.child
        if isinstance(child, JoinOp) and child.kind in ("INNER", "CROSS"):
            _flatten(child, relations, predicates)
            predicates.extend(ast.conjuncts(plan.predicate))
            return
    relations.append(plan)

"""The mediator core: binding, optimization, distributed execution.

The pipeline (driven by :class:`~repro.core.planner.Planner`):

1. parse (``repro.sql``) →
2. analyze/bind + build logical plan (``analyzer``) →
3. rule-based rewrites (``rewriter``) →
4. cost-based join ordering (``join_order``) →
5. capability-driven source pushdown (``pushdown``) →
6. semijoin reduction (``semijoin``) →
7. physical planning (``physical``) →
8. Volcano-style execution with exchange operators (``executor``).
"""

from .mediator import GlobalInformationSystem
from .planner import Planner, PlannerOptions
from .result import QueryMetrics, QueryResult

__all__ = [
    "GlobalInformationSystem",
    "Planner",
    "PlannerOptions",
    "QueryMetrics",
    "QueryResult",
]

"""Partial (local/global) aggregation through UNION ALL.

The classic distributed-aggregation decomposition: an aggregate over a
horizontally partitioned table —

    Aggregate[G; F(x)]( UnionAll(b1, …, bn) )

— becomes per-branch *partial* aggregates combined by a *final* aggregate:

    Project[ combine ](
        Aggregate[G'; F_final](
            UnionAll( Aggregate[G_b; F_partial](b_i) … )))

so each partition ships one row per group instead of its raw rows, and the
pushdown planner can then delegate every partial aggregate to its source.

Decompositions::

    COUNT(*)  → partial COUNT(*)        , final SUM
    COUNT(x)  → partial COUNT(x)        , final SUM
    SUM(x)    → partial SUM(x)          , final SUM
    MIN(x)    → partial MIN(x)          , final MIN
    MAX(x)    → partial MAX(x)          , final MAX
    AVG(x)    → partial SUM(x)+COUNT(x) , final SUM/SUM (combining project)

DISTINCT aggregates are not decomposable this way; their presence disables
the rewrite for the whole operator. The rewrite preserves output-column
*identity*, so nothing upstream needs adjusting.

The final aggregate runs as a batch-at-a-time
:class:`~repro.core.physical.HashAggregateExec`: partial rows from every
branch accumulate into the group table one batch at a time, so the
combining step's cost stays flat regardless of the executor's
``batch_size``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..datatypes import DataType
from ..sql import ast
from .expressions import infer_type
from .logical import (
    AggregateCall,
    AggregateOp,
    LogicalPlan,
    ProjectOp,
    RelColumn,
    UnionOp,
    transform_plan,
)


def push_partial_aggregation(plan: LogicalPlan) -> LogicalPlan:
    """Apply the local/global decomposition everywhere it is legal."""

    def visit(node: LogicalPlan) -> Optional[LogicalPlan]:
        if isinstance(node, AggregateOp):
            return _decompose(node)
        return None

    return transform_plan(plan, visit)


def _decompose(aggregate: AggregateOp) -> Optional[LogicalPlan]:
    union = aggregate.child
    if not isinstance(union, UnionOp) or not union.all or len(union.inputs) < 2:
        return None
    if any(call.distinct for call in aggregate.aggregates):
        return None
    if any(call.function not in _DECOMPOSABLE for call in aggregate.aggregates):
        return None

    # --- per-branch partial aggregates ------------------------------------
    partial_plans: List[LogicalPlan] = []
    first_partial_columns: Optional[List[RelColumn]] = None
    for branch in union.inputs:
        mapping = {
            union_column.column_id: branch_column
            for union_column, branch_column in zip(
                union.columns, branch.output_columns
            )
        }
        group_exprs = [
            ast.replace_refs(expr, mapping) for expr in aggregate.group_expressions
        ]
        group_columns = [
            RelColumn(column.name, column.dtype, origin=column.origin)
            for column in aggregate.group_columns
        ]
        partial_calls: List[AggregateCall] = []
        partial_columns: List[RelColumn] = []
        for call in aggregate.aggregates:
            for partial_fn in _partial_functions(call.function):
                argument = (
                    ast.replace_refs(call.argument, mapping)
                    if call.argument is not None
                    else None
                )
                partial_calls.append(AggregateCall(partial_fn, argument, False))
                if partial_fn == "COUNT" or argument is None:
                    dtype = DataType.INTEGER
                else:
                    dtype = infer_type(argument)
                partial_columns.append(RelColumn(f"p{partial_fn.lower()}", dtype))
        partial_plans.append(
            AggregateOp(branch, group_exprs, group_columns, partial_calls, partial_columns)
        )
        if first_partial_columns is None:
            first_partial_columns = group_columns + partial_columns

    assert first_partial_columns is not None
    union_columns = [column.derive() for column in first_partial_columns]
    partial_union = UnionOp(partial_plans, union_columns, all=True)

    # --- final aggregate over the partial rows -----------------------------
    group_count = len(aggregate.group_expressions)
    final_group_exprs = [column.ref() for column in union_columns[:group_count]]
    final_group_columns = [
        RelColumn(column.name, column.dtype, origin=column.origin)
        for column in aggregate.group_columns
    ]
    final_calls: List[AggregateCall] = []
    final_columns: List[RelColumn] = []
    #: original aggregate index → list of final-column indexes feeding it
    feeds: List[List[int]] = []
    cursor = group_count
    for call in aggregate.aggregates:
        indexes: List[int] = []
        for partial_fn in _partial_functions(call.function):
            final_fn = _FINAL_FUNCTION[partial_fn]
            partial_column = union_columns[cursor]
            final_calls.append(
                AggregateCall(final_fn, partial_column.ref(), False)
            )
            final_columns.append(
                RelColumn(f"f{final_fn.lower()}", partial_column.dtype)
            )
            indexes.append(len(final_columns) - 1)
            cursor += 1
        feeds.append(indexes)
    final_aggregate = AggregateOp(
        partial_union,
        final_group_exprs,
        final_group_columns,
        final_calls,
        final_columns,
    )

    # --- combining projection (restores original output identity) ---------
    expressions: List[ast.Expr] = [c.ref() for c in final_group_columns]
    for call, indexes in zip(aggregate.aggregates, feeds):
        if call.function == "AVG":
            sum_ref = final_columns[indexes[0]].ref()
            count_ref = final_columns[indexes[1]].ref()
            expressions.append(ast.BinaryOp("/", sum_ref, count_ref))
        else:
            expressions.append(final_columns[indexes[0]].ref())
    return ProjectOp(final_aggregate, expressions, list(aggregate.output_columns))


_DECOMPOSABLE = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def _partial_functions(function: str) -> Tuple[str, ...]:
    """Original aggregate → partial aggregate(s) computed per branch."""
    if function == "AVG":
        return ("SUM", "COUNT")
    return (function,)


_FINAL_FUNCTION = {
    "COUNT": "SUM",
    "SUM": "SUM",
    "MIN": "MIN",
    "MAX": "MAX",
}

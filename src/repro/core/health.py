"""Per-source health tracking: latency quantiles, EWMA, and error rates.

A mediated federation is gated by its slowest component system, and the
only place latency variance is observable is the mediator side of the
wire. :class:`SourceHealthRegistry` is that vantage point: every page
fetch's wall-clock time is recorded per source, along with fetch
successes and failures, and the registry answers the questions the
tail-tolerance layer asks at dispatch time:

* **adaptive no-progress timeouts** — ``clamp(k * p99, floor, ceiling)``
  over the source's observed page-fetch times, replacing the fixed
  scheduler timeout once enough samples exist (the static value stays as
  the cold-start fallback);
* **hedge delays** — the observed p95 (configurable quantile): how long a
  fragment may sit without a first page before a duplicate fetch is
  launched on a replica;
* **health-aware routing** — a scalar health score (EWMA latency
  inflated by the recent error rate) ranking a fragment's candidate
  sources at dispatch.

Quantiles are computed over a bounded window of the most recent
observations (the metrics registry's histograms are bucketed and cannot
answer quantile queries; a window also tracks regime changes — a source
that *was* slow should stop inflating its own timeout once it recovers).
All state is thread-safe: scheduler workers record latencies
concurrently. Like breakers and network links, a source's health dies
with it on ``unregister_source`` — the registry's :meth:`remove` is wired
into the mediator's catalog-event hook.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

#: Default EWMA smoothing factor for per-source latency.
DEFAULT_EWMA_ALPHA = 0.2

#: Default bounded window of latency observations kept per source.
DEFAULT_WINDOW = 512

#: Window of recent fetch outcomes used for the rolling error rate.
OUTCOME_WINDOW = 64

#: Observations required before quantile-derived budgets are trusted.
MIN_SAMPLES = 8


class SourceHealth:
    """Mutable health state of one source (owned by the registry).

    Tracks a bounded window of page-fetch latencies (milliseconds of
    wall-clock between consecutive pages of a fetch), an EWMA over the
    same stream, fetch outcome counts, and cumulative hedge win/loss
    counters for the source acting as hedge *primary*.
    """

    __slots__ = (
        "_alpha", "_window", "_lock", "ewma_ms", "samples", "errors",
        "successes", "hedges_launched", "hedges_won", "_latencies",
        "_outcomes", "_sorted",
    )

    def __init__(
        self, alpha: float = DEFAULT_EWMA_ALPHA, window: int = DEFAULT_WINDOW
    ) -> None:
        self._alpha = alpha
        self._window = max(window, 1)
        self._lock = threading.Lock()
        self.ewma_ms: Optional[float] = None
        self.samples = 0
        self.errors = 0
        self.successes = 0
        self.hedges_launched = 0
        self.hedges_won = 0
        self._latencies: Deque[float] = deque(maxlen=self._window)
        #: Rolling window of recent fetch outcomes (True = failure).
        self._outcomes: Deque[bool] = deque(maxlen=OUTCOME_WINDOW)
        self._sorted: Optional[list] = None

    def observe_latency(self, ms: float) -> None:
        with self._lock:
            self.samples += 1
            self._latencies.append(ms)
            self._sorted = None
            if self.ewma_ms is None:
                self.ewma_ms = ms
            else:
                self.ewma_ms += self._alpha * (ms - self.ewma_ms)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1
            self._outcomes.append(True)

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._outcomes.append(False)

    def record_hedge(self, won: bool) -> None:
        with self._lock:
            self.hedges_launched += 1
            if won:
                self.hedges_won += 1

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of the windowed latencies (None when empty).

        Nearest-rank over the sorted window; the sort is cached and
        invalidated on insert (quantiles are asked once per dispatch,
        latencies arrive once per page).
        """
        with self._lock:
            if not self._latencies:
                return None
            ordered = self._sorted
            if ordered is None:
                ordered = self._sorted = sorted(self._latencies)
            rank = min(int(q * len(ordered)), len(ordered) - 1)
            return ordered[rank]

    def error_rate(self) -> float:
        """Failure fraction over the recent outcome window (0.0 when idle)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    def score(self) -> Optional[float]:
        """Scalar health score for routing: lower is healthier.

        EWMA latency inflated by the recent error rate (a source failing
        half its fetches scores far worse than its latency alone says).
        None until at least one latency sample exists — an unknown source
        is never preferred over, nor rejected against, a known one.
        """
        with self._lock:
            if self.ewma_ms is None:
                return None
            rate = (
                sum(self._outcomes) / len(self._outcomes)
                if self._outcomes
                else 0.0
            )
        return self.ewma_ms * (1.0 + 4.0 * rate)


class SourceHealthRegistry:
    """Per-source health trackers, created lazily, shared by all of a
    mediator's queries (observations must accumulate across queries for
    quantiles to mean anything — mirrors ``CircuitBreakerRegistry``)."""

    def __init__(
        self, alpha: float = DEFAULT_EWMA_ALPHA, window: int = DEFAULT_WINDOW
    ) -> None:
        self._alpha = alpha
        self._window = window
        self._lock = threading.Lock()
        self._sources: Dict[str, SourceHealth] = {}

    def health_for(self, source_name: str) -> SourceHealth:
        key = source_name.lower()
        with self._lock:
            health = self._sources.get(key)
            if health is None:
                health = SourceHealth(self._alpha, self._window)
                self._sources[key] = health
            return health

    def get(self, source_name: str) -> Optional[SourceHealth]:
        with self._lock:
            return self._sources.get(source_name.lower())

    # -- recording ----------------------------------------------------------

    def observe_latency(self, source_name: str, ms: float) -> None:
        self.health_for(source_name).observe_latency(ms)

    def record_error(self, source_name: str) -> None:
        self.health_for(source_name).record_error()

    def record_success(self, source_name: str) -> None:
        self.health_for(source_name).record_success()

    def record_hedge(self, source_name: str, won: bool) -> None:
        self.health_for(source_name).record_hedge(won)

    # -- derived budgets ----------------------------------------------------

    def quantile(self, source_name: str, q: float) -> Optional[float]:
        health = self.get(source_name)
        return health.quantile(q) if health is not None else None

    def score(self, source_name: str) -> Optional[float]:
        health = self.get(source_name)
        return health.score() if health is not None else None

    def adaptive_timeout_ms(
        self,
        source_name: str,
        multiplier: float,
        floor_ms: float,
        ceiling_ms: float,
        min_samples: int = MIN_SAMPLES,
    ) -> Optional[float]:
        """The quantile-derived no-progress budget for one source.

        ``clamp(multiplier * p99, floor_ms, ceiling_ms)`` once at least
        ``min_samples`` page fetches have been observed; None while cold
        (the caller falls back to the static timeout).
        """
        health = self.get(source_name)
        if health is None or health.samples < min_samples:
            return None
        p99 = health.quantile(0.99)
        if p99 is None:
            return None
        return min(max(multiplier * p99, floor_ms), ceiling_ms)

    def hedge_delay_ms(
        self,
        source_name: str,
        quantile: float,
        fallback_ms: float,
        min_samples: int = MIN_SAMPLES,
    ) -> float:
        """How long a fragment may wait for its first page before a hedge
        is launched: the source's observed latency quantile (~p95), or
        ``fallback_ms`` while cold. Never below ``fallback_ms`` — the
        static delay acts as the floor so a momentarily-fast source
        cannot drive hedge delays (and duplicate traffic) toward zero.
        """
        health = self.get(source_name)
        if health is None or health.samples < min_samples:
            return fallback_ms
        observed = health.quantile(quantile)
        if observed is None:
            return fallback_ms
        return max(observed, fallback_ms)

    # -- lifecycle / diagnostics --------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Current latency/error/hedge picture of every known source."""
        with self._lock:
            sources = dict(self._sources)
        out: Dict[str, Dict[str, object]] = {}
        for name, health in sorted(sources.items()):
            out[name] = {
                "ewma_ms": health.ewma_ms,
                "p50_ms": health.quantile(0.50),
                "p95_ms": health.quantile(0.95),
                "p99_ms": health.quantile(0.99),
                "samples": health.samples,
                "errors": health.errors,
                "successes": health.successes,
                "error_rate": health.error_rate(),
                "hedges_launched": health.hedges_launched,
                "hedges_won": health.hedges_won,
            }
        return out

    def remove(self, source_name: str) -> bool:
        """Forget one source's health (the source left the federation);
        True if there was any. A later re-register starts cold."""
        with self._lock:
            return self._sources.pop(source_name.lower(), None) is not None

    def reset(self) -> None:
        """Forget all health state (e.g. after repairing a federation)."""
        with self._lock:
            self._sources.clear()


__all__ = [
    "DEFAULT_EWMA_ALPHA",
    "DEFAULT_WINDOW",
    "MIN_SAMPLES",
    "SourceHealth",
    "SourceHealthRegistry",
]

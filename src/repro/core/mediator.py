"""The mediator facade: a Global Information System instance.

:class:`GlobalInformationSystem` ties the pieces together: the catalog of
sources/tables/views, the simulated network, the planner, and execution.
This is the class downstream users interact with::

    gis = GlobalInformationSystem()
    gis.register_source("erp", SQLiteSource("erp"), link=NetworkLink(30.0, 2e6))
    gis.register_table("orders", source="erp")
    gis.create_view("big_orders", "SELECT * FROM orders WHERE total > 1000")
    gis.analyze()
    result = gis.query("SELECT COUNT(*) FROM big_orders")
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from datetime import date
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..cache import FragmentCache, MaterializedViewRegistry
from ..catalog import events as catalog_events
from ..catalog.catalog import Catalog
from ..catalog.events import CatalogEvent
from ..catalog.journal import CatalogJournal
from ..catalog.mappings import TableMapping
from ..catalog.schema import Column, TableSchema
from ..catalog.statistics import DEFAULT_HISTOGRAM_BUCKETS, TableStatistics
from ..datatypes import DataType
from ..errors import CatalogError, ExecutionError, PlanError, UnknownObjectError
from ..obs import Observability
from ..sources.base import Adapter
from ..sources.faults import FaultInjector, FaultPlan
from ..sources.network import NetworkLink, SimulatedNetwork
from ..sql.parser import UtilityStatement, parse_select, parse_utility
from .analyzer import Analyzer
from .fragments import interpret_plan
from .health import SourceHealthRegistry
from .logical import MaterializedRowsOp, ScanOp
from .morsels import MorselPool
from .pages import Page
from .physical import (
    ExchangeExec,
    ExecutionContext,
    ExecutionMetrics,
    profile_operators,
)
from .planner import PlannedQuery, Planner, PlannerOptions
from .prepared import (
    ParameterizedStatement,
    PlanCache,
    PreparedPlan,
    bind_statement_values,
    parameterize,
)
from .result import QueryMetrics, QueryResult
from .scheduler import (
    CircuitBreakerRegistry,
    Deadline,
    FragmentScheduler,
    SchedulerConfig,
)


class GlobalInformationSystem:
    """A mediator over autonomous, heterogeneous component systems."""

    def __init__(
        self,
        network: Optional[SimulatedNetwork] = None,
        options: Optional[PlannerOptions] = None,
        fragment_retries: int = 0,
        result_cache_size: int = 0,
        observability: Optional[Observability] = None,
        faults: Optional[FaultPlan] = None,
        plan_cache_size: int = 0,
        fragment_cache_bytes: int = 0,
        catalog_journal_path: Optional[str] = None,
        catalog_snapshot_interval: int = 64,
        catalog_recover: bool = False,
    ) -> None:
        """Create a mediator.

        ``fragment_retries`` lets exchanges re-issue a fragment after a
        transient :class:`~repro.errors.SourceError` (only before any rows
        arrived). ``result_cache_size`` > 0 enables an LRU cache of query
        results keyed by (sql, options); sources are autonomous, so the
        cache is invalidated only by catalog changes, ``analyze()``, or
        :meth:`clear_result_cache` — stale reads are the user's trade-off.

        ``plan_cache_size`` > 0 enables the plan-shape cache: queries that
        differ only in literal values share one optimized plan (see
        :mod:`repro.core.prepared`), skipping parse-to-plan after the first
        execution of a shape. Catalog changes invalidate it via the same
        epoch hook as the result cache.

        Scheduling knobs (parallel fragments, timeouts, backoff, circuit
        breakers) live on :class:`PlannerOptions`; the mediator owns the
        per-source breaker registry (``self.breakers``) so breaker state
        persists across queries. The mediator is safe to query from
        multiple threads.

        ``observability`` bundles the tracer, metrics registry, and
        slow-query log (see :class:`repro.obs.Observability`); omitted, one
        is created with everything off, so instrumentation costs nothing
        until armed.

        ``faults`` arms a mediator-level
        :class:`~repro.sources.faults.FaultInjector` whose per-source state
        persists across queries (so recovery-after-K scripts span a
        session); a per-query plan on ``PlannerOptions.faults`` overrides
        it with a fresh injector per execution.

        ``fragment_cache_bytes`` > 0 arms the semantic fragment cache (see
        :mod:`repro.cache`): complete pushed fragment results are kept
        under a byte-budgeted LRU and replayed — on exact canonical-plan
        match or predicate subsumption — instead of re-fetching, shipping
        zero bytes. Invalidation is per-source-epoch: catalog changes and
        :meth:`notify_source_changed` bump the clock and entries die
        lazily.

        ``catalog_journal_path`` arms catalog persistence: every catalog
        operation appends to an append-only JSONL journal (with a
        compacted snapshot record every ``catalog_snapshot_interval``
        operations). With ``catalog_recover`` the journal is replayed
        into this fresh mediator first — sources reattach from their
        declarative connector specs and epochs stay monotone across the
        restart (see :mod:`repro.catalog.journal`); the replay report
        lands on ``self.catalog_recovery``.
        """
        self.catalog = Catalog()
        self.network = network or SimulatedNetwork()
        self.planner = Planner(self.catalog, self.network, options)
        self.fragment_retries = fragment_retries
        self.breakers = CircuitBreakerRegistry()
        # Per-source latency quantiles / error rates feeding adaptive
        # timeouts, hedge delays, and health-aware routing; like breakers,
        # it persists across queries and dies per-source on unregister.
        self.health = SourceHealthRegistry()
        self.obs = observability or Observability()
        self.fault_injector = FaultInjector(faults) if faults is not None else None
        self._result_cache_size = result_cache_size
        self._result_cache: "OrderedDict[Tuple[str, Optional[PlannerOptions]], QueryResult]" = (
            OrderedDict()
        )
        self._cache_lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0
        self.plan_cache = PlanCache(plan_cache_size)
        self.fragment_cache = FragmentCache(
            fragment_cache_bytes, self.catalog.versions
        )
        self.materialized = MaterializedViewRegistry(self.catalog.versions)
        # The analyzer consults catalog.materialized at bind time (duck
        # attribute: avoids a core -> cache import cycle in the catalog).
        self.catalog.materialized = self.materialized
        # React to catalog changes before the journal persists them, so a
        # journaled operation is never observable with stale caches.
        self.catalog.subscribe(self._on_catalog_event)
        self.catalog_journal: Optional[CatalogJournal] = None
        self.catalog_recovery: Optional[Dict[str, Any]] = None
        if catalog_journal_path is not None:
            self.catalog_journal = CatalogJournal(
                catalog_journal_path, catalog_snapshot_interval
            )
            self.catalog_journal.attach(self)
            if catalog_recover:
                self.catalog_recovery = self.catalog_journal.recover()

    @property
    def source_epochs(self):
        """The per-source epoch clock — now the catalog's version tracker
        (kept under the historical name for callers and tests)."""
        return self.catalog.versions

    def _on_catalog_event(self, event: CatalogEvent) -> None:
        """React to one catalog mutation: drop exactly the cached state
        the event invalidates.

        Epoch-keyed caches (fragments, materialized snapshots) die lazily
        off the version bumps the catalog already made; this hook handles
        the eager parts — the result/plan caches (any catalog change can
        reshape plans) and, on source removal, state whose memory should
        not outlive the source.
        """
        if event.kind == catalog_events.SOURCE_UNREGISTERED:
            self.fragment_cache.evict_source(event.source)
            self.breakers.remove(event.source)
            self.health.remove(event.source)
            self.network.remove_link(event.source)
        elif event.kind in (
            catalog_events.TABLE_DROPPED,
            catalog_events.TABLE_ALTERED,
        ):
            mapping = event.payload.get("mapping")
            if mapping:
                self.fragment_cache.evict_table(
                    mapping["source"], mapping["remote_table"]
                )
        self.clear_result_cache()

    # -- federation configuration ------------------------------------------------

    def register_source(
        self,
        name: str,
        adapter: Adapter,
        link: Optional[NetworkLink] = None,
        spec: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Attach a component system under a federation-unique name.

        ``spec`` is the declarative connector spec (the ``config.py``
        source dictionary); when given, the catalog journal can reattach
        the source after a restart. Programmatic registrations without
        one still work — they are just skipped by recovery.
        """
        if link is not None:
            self.network.set_link(name, link)
        self.catalog.register_source(name, adapter, spec=spec)

    def unregister_source(self, name: str) -> Dict[str, List[str]]:
        """Detach a component system at runtime.

        The catalog cascades (replicas on the source dropped everywhere,
        tables re-pointed at a surviving replica or dropped — see
        :meth:`repro.catalog.catalog.Catalog.unregister_source`), and the
        mediator's event hook evicts the source's fragment-cache entries,
        forgets its circuit breaker, and drops its network link. Queries
        already in flight see the source fail and degrade through the
        normal partial-results path. Returns the catalog's cascade report.
        """
        return self.catalog.unregister_source(name)

    def register_table(
        self,
        name: str,
        source: str,
        remote_table: Optional[str] = None,
        column_map: Optional[Dict[str, str]] = None,
        schema: Optional[TableSchema] = None,
    ) -> None:
        """Publish a source's native table into the global schema.

        Without an explicit ``schema``, the global schema derives from the
        source's native one: native columns keep their names except those
        mentioned (as values) in ``column_map``, which take the global name
        (the map's key). Types always come from the native declaration.
        """
        adapter: Adapter = self.catalog.source(source)
        native_name = remote_table or name
        resolved = self._find_native_table(adapter, native_name)
        if resolved is None:
            raise UnknownObjectError(
                f"source {source!r} has no table {native_name!r}"
            )
        native_key, native_schema = resolved
        mapping = TableMapping(
            source=source,
            remote_table=native_key,
            column_map=dict(column_map or {}),
        )
        if schema is None:
            reverse = {v.lower(): k for k, v in (column_map or {}).items()}
            columns = [
                Column(reverse.get(c.name.lower(), c.name), c.dtype)
                for c in native_schema.columns
            ]
            schema = TableSchema(name, columns)
        else:
            # Validate that every mapped global column lands on a native one.
            for column in schema.columns:
                native = mapping.remote_column(column.name)
                if not native_schema.has_column(native):
                    raise CatalogError(
                        f"global column {column.name!r} maps to missing native "
                        f"column {native!r} on {source}.{native_schema.name}"
                    )
        self.catalog.register_table(name, schema, mapping)

    def register_replica(
        self,
        name: str,
        source: str,
        remote_table: Optional[str] = None,
        column_map: Optional[Dict[str, str]] = None,
    ) -> None:
        """Declare an additional copy of a registered table on another source.

        The replica must expose (under the ``column_map`` renames) every
        column of the table's global schema. The planner's replica selector
        then picks the cheapest copy per query; ANALYZE keeps using the
        primary.
        """
        entry = self.catalog.table(name)
        if entry.schema is None or entry.mapping is None:
            raise CatalogError(f"cannot add a replica to view {name!r}")
        adapter: Adapter = self.catalog.source(source)
        native_name = remote_table or name
        resolved = self._find_native_table(adapter, native_name)
        if resolved is None:
            raise UnknownObjectError(
                f"source {source!r} has no table {native_name!r}"
            )
        native_key, native_schema = resolved
        mapping = TableMapping(
            source=source, remote_table=native_key, column_map=dict(column_map or {})
        )
        for column in entry.schema.columns:
            native = mapping.remote_column(column.name)
            if not native_schema.has_column(native):
                raise CatalogError(
                    f"replica of {name!r} on {source!r} lacks column "
                    f"{native!r} (for global {column.name!r})"
                )
        self.catalog.add_replica(name, mapping)

    def alter_table(
        self,
        name: str,
        remote_table: Optional[str] = None,
        column_map: Optional[Dict[str, str]] = None,
        schema: Optional[TableSchema] = None,
    ) -> Dict[str, List[str]]:
        """Re-derive a table's global schema after a source-side change.

        The source's *current* native schema becomes the new global one
        (same derivation rules as :meth:`register_table`); replicas that
        no longer expose every global column are dropped, statistics
        gathered under the old schema are discarded, and the table's
        schema version plus the owning source's epoch advance — every
        cached plan and fragment touching the table dies.

        Returns ``{"dropped_replicas": [source, ...]}``.
        """
        entry = self.catalog.table(name)
        if entry.is_view or entry.mapping is None:
            raise CatalogError(f"cannot alter view {name!r}")
        source = entry.mapping.source
        adapter: Adapter = self.catalog.source(source)
        native_name = remote_table or entry.mapping.remote_table
        resolved = self._find_native_table(adapter, native_name)
        if resolved is None:
            raise UnknownObjectError(
                f"source {source!r} has no table {native_name!r}"
            )
        native_key, native_schema = resolved
        mapping = TableMapping(
            source=source,
            remote_table=native_key,
            column_map=dict(column_map or {}),
        )
        if schema is None:
            reverse = {v.lower(): k for k, v in (column_map or {}).items()}
            columns = [
                Column(reverse.get(c.name.lower(), c.name), c.dtype)
                for c in native_schema.columns
            ]
            schema = TableSchema(name, columns)
        else:
            for column in schema.columns:
                native = mapping.remote_column(column.name)
                if not native_schema.has_column(native):
                    raise CatalogError(
                        f"global column {column.name!r} maps to missing native "
                        f"column {native!r} on {source}.{native_schema.name}"
                    )
        survivors: List[TableMapping] = []
        dropped: List[str] = []
        for replica in entry.replicas:
            replica_adapter: Adapter = self.catalog.source(replica.source)
            replica_native = self._find_native_table(
                replica_adapter, replica.remote_table
            )
            keeps = replica_native is not None and all(
                replica_native[1].has_column(replica.remote_column(c.name))
                for c in schema.columns
            )
            if keeps:
                survivors.append(replica)
            else:
                dropped.append(replica.source)
        self.catalog.alter_table(name, schema, mapping, survivors)
        return {"dropped_replicas": dropped}

    def register_all_tables(self, source: str) -> List[str]:
        """Publish every native table of a source under its native name."""
        adapter: Adapter = self.catalog.source(source)
        registered = []
        for native_name in adapter.tables():
            self.register_table(native_name, source=source)
            registered.append(native_name)
        return registered

    def create_view(self, name: str, sql: str) -> None:
        """Define an integration view (validated by binding it once)."""
        self.catalog.register_view(name, sql)
        try:
            Analyzer(self.catalog).bind_statement(parse_select(sql))
        except Exception:
            self.catalog.drop(name)
            raise

    # -- materialized views -------------------------------------------------------

    def create_materialized_view(
        self, name: str, sql: str, staleness_ms: float = 0.0
    ) -> None:
        """Define a materialized GAV view and build its first snapshot.

        The view is also registered as an ordinary integration view, so a
        reference that finds the snapshot too stale falls back to normal
        view expansion against the base sources. ``staleness_ms`` bounds
        how long the snapshot may keep serving after a source epoch bump
        invalidates it (0 = serve only while every source epoch is
        unchanged). Usually reached through SQL::

            CREATE MATERIALIZED VIEW name [WITH STALENESS ms] AS SELECT ...
        """
        self.create_view(name, sql)
        registered = False
        try:
            with self.materialized.suspended():
                bound = Analyzer(self.catalog).bind_statement(parse_select(sql))
            self.materialized.register(
                name,
                sql,
                staleness_ms,
                [column.name for column in bound.output_columns],
                [column.dtype for column in bound.output_columns],
            )
            registered = True
            self._refresh_snapshot(name)
        except Exception:
            if registered:
                self.materialized.drop(name)
            self.catalog.drop(name)
            self.clear_result_cache()
            raise
        self.catalog.publish(
            catalog_events.MATERIALIZED_CREATED,
            name=name,
            payload={"sql": sql, "staleness_ms": staleness_ms},
        )

    def refresh_materialized_view(self, name: str) -> None:
        """Re-execute the view's SELECT against base sources and install
        the rows as the current snapshot (``REFRESH MATERIALIZED VIEW``)."""
        if not self.materialized.has(name):
            raise CatalogError(f"unknown materialized view: {name!r}")
        self._refresh_snapshot(name)

    def drop_materialized_view(self, name: str) -> None:
        """Drop the snapshot and the underlying integration view."""
        self.materialized.drop(name)
        self.catalog.drop(name)
        self.catalog.publish(catalog_events.MATERIALIZED_DROPPED, name=name)

    def _refresh_snapshot(self, name: str) -> None:
        """Execute the defining SELECT with substitution suspended (a
        snapshot must never be built from another view's snapshot) and
        store rows + the epoch snapshot taken *before* execution, so a
        concurrent bump makes the fresh snapshot immediately stale rather
        than silently current."""
        view = self.materialized.get(name)
        epoch_snapshot = self.source_epochs.snapshot()
        with self.materialized.suspended():
            bound = Analyzer(self.catalog).bind_statement(
                parse_select(view.select_sql)
            )
            sources = sorted(
                {
                    mapping.source.lower()
                    for op in bound.walk()
                    if isinstance(op, ScanOp) and op.table.mapping is not None
                    for mapping in op.table.all_mappings()
                }
            )
            result = self._execute_query(
                view.select_sql,
                None,
                lambda tracer, root: (
                    self.planner.plan(
                        view.select_sql, None, tracer=tracer, parent=root
                    ),
                    False,
                ),
            )
        if not result.complete:
            raise ExecutionError(
                f"refusing to materialize {name!r} from a partial result "
                f"(excluded sources: {sorted(result.excluded_sources)})"
            )
        self.materialized.store_snapshot(
            name, result.rows, sources, epoch_snapshot
        )
        self.clear_result_cache()

    # -- statistics ---------------------------------------------------------------

    def analyze(
        self,
        tables: Optional[Sequence[str]] = None,
        histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
        sample_rows: Optional[int] = None,
    ) -> Dict[str, TableStatistics]:
        """Gather statistics by scanning sources through their wrappers.

        Only base tables are analyzed (views derive estimates structurally).
        With ``sample_rows`` the scan stops after that many rows (a prefix
        sample — cheap but biased for sorted data) and the row count is
        scaled up using the source's own count metadata when it offers any.
        Returns the statistics keyed by global table name.
        """
        names = list(tables) if tables is not None else self.catalog.table_names()
        collected: Dict[str, TableStatistics] = {}
        for name in names:
            entry = self.catalog.table(name)
            if entry.is_view or entry.mapping is None or entry.schema is None:
                continue
            rows: List[Tuple[Any, ...]] = []
            truncated = False
            for row in self._scan_global(entry):
                if sample_rows is not None and len(rows) >= sample_rows:
                    truncated = True
                    break
                rows.append(row)
            statistics = TableStatistics.from_rows(
                entry.schema, rows, histogram_buckets
            )
            if truncated:
                adapter: Adapter = self.catalog.source(entry.mapping.source)
                try:
                    total = adapter.row_count(entry.mapping.remote_table)
                except Exception:
                    total = None
                if total is not None:
                    statistics.row_count = float(total)
            self.catalog.set_statistics(name, statistics)
            collected[name] = statistics
        return collected

    def _scan_global(self, entry) -> Iterator[Tuple[Any, ...]]:
        """Scan a base table through its wrapper, in global column order."""
        mapping = entry.mapping
        adapter: Adapter = self.catalog.source(mapping.source)
        resolved = self._find_native_table(adapter, mapping.remote_table)
        if resolved is None:
            raise UnknownObjectError(
                f"source {mapping.source!r} lost table {mapping.remote_table!r}"
            )
        native_key, native_schema = resolved
        indices = [
            native_schema.index_of(mapping.remote_column(column.name))
            for column in entry.schema.columns
        ]
        identity = indices == list(range(len(native_schema.columns)))
        for row in adapter.scan(native_key):
            yield row if identity else tuple(row[i] for i in indices)

    # -- querying ---------------------------------------------------------------

    def plan(self, sql: str, options: Optional[PlannerOptions] = None) -> PlannedQuery:
        """Plan without executing (inspection, tests, benchmarks)."""
        return self.planner.plan(sql, options)

    @staticmethod
    def _plan_key_options(opts: PlannerOptions) -> PlannerOptions:
        """Normalize options into the plan-cache key.

        Knobs that only affect *execution* (deadlines, fault plans, trace,
        failure policy, typed column vectors, morsel workers) are masked
        out so requests that differ only in runtime behavior share one
        plan. ``fuse`` stays in the key — it changes the physical plan
        shape.
        """
        return opts.but(
            faults=None,
            trace=False,
            deadline_ms=0.0,
            on_source_failure="fail",
            typed_columns=True,
            morsel_workers=1,
            # Tail-tolerance knobs steer fetching, never the plan shape.
            adaptive_timeout=False,
            timeout_multiplier=3.0,
            timeout_floor_ms=50.0,
            timeout_ceiling_ms=30000.0,
            hedge_fragments=False,
            hedge_delay_ms=50.0,
            hedge_quantile=0.95,
            health_routing=False,
        )

    def _plan_for_query(
        self, sql: str, options: Optional[PlannerOptions], tracer, parent
    ) -> Tuple[PlannedQuery, bool]:
        """Plan ``sql``, through the plan-shape cache when enabled.

        Returns ``(planned, plan_cache_hit)``. On a hit the cached
        distributed plan is rebound to this query's literals and only the
        physical tree is rebuilt; misses (and value-sensitive fallbacks,
        where a literal the optimizer folded away changed) run the full
        pipeline and refresh the cache.
        """
        cache = self.plan_cache
        if not cache.enabled:
            return self.planner.plan(sql, options, tracer=tracer, parent=parent), False
        opts = options or self.planner.options
        with tracer.child(parent, "phase:parse", "phase"):
            statement = parse_select(sql)
        param = parameterize(statement)
        key_opts = self._plan_key_options(opts)
        epoch = cache.epoch
        entry = cache.lookup(param.shape_key, key_opts)
        if entry is not None:
            bound = entry.bind(sql, param.values, self.catalog, opts)
            if bound is not None:
                cache.record_hit()
                return bound, True
            cache.record_fallback()
        else:
            cache.record_miss()
        planned = self.planner.plan_statement(
            param.statement, sql, opts, tracer=tracer, parent=parent
        )
        if self._materialized_hits(planned) == 0:
            # Plans with a spliced-in snapshot are never cached: their rows
            # go stale on the staleness clock, which the epoch-based plan
            # cache cannot observe.
            cache.store(
                PreparedPlan(
                    param.shape_key, key_opts, planned,
                    param.values, param.dtypes, epoch,
                    statement=param.statement,
                )
            )
        return planned, False

    @staticmethod
    def _materialized_hits(planned: PlannedQuery) -> int:
        """How many view references the analyzer answered from snapshots."""
        return sum(
            1
            for op in planned.distributed.walk()
            if isinstance(op, MaterializedRowsOp)
        )

    def prepare(
        self, sql: str, options: Optional[PlannerOptions] = None
    ) -> "PreparedStatement":
        """Explicitly prepare a statement for repeated execution.

        The statement's literals become positional parameters (in query
        text order); each :meth:`PreparedStatement.execute` call may
        supply new values. Unlike the implicit plan cache this pins the
        prepared plan on the handle, so it survives cache eviction (but
        still replans after catalog invalidation)."""
        opts = options or self.planner.options
        param = parameterize(parse_select(sql))
        key_opts = self._plan_key_options(opts)
        epoch = self.plan_cache.epoch
        # Prepared plans are pinned for repeated execution, so never bake a
        # materialized snapshot's rows into one.
        with self.materialized.suspended():
            planned = self.planner.plan_statement(param.statement, sql, opts)
        entry = PreparedPlan(
            param.shape_key, key_opts, planned,
            param.values, param.dtypes, epoch,
            statement=param.statement,
        )
        self.plan_cache.store(entry)
        return PreparedStatement(self, sql, opts, param, entry)

    def _execution_context(
        self, options: Optional[PlannerOptions]
    ) -> ExecutionContext:
        """Build the runtime context for one query, arming the fragment
        scheduler and circuit breakers when the options call for them."""
        opts = options or self.planner.options
        config = SchedulerConfig.from_options(opts, self.fragment_retries)
        # Per-query fault plans get a fresh injector (deterministic
        # replays); otherwise the mediator's persistent injector applies.
        if opts.faults is not None:
            injector = FaultInjector(opts.faults)
        else:
            injector = self.fault_injector
        context = ExecutionContext(
            self.catalog,
            self.network,
            fragment_retries=config.retry.retries,
            scheduler_config=config,
            breakers=self.breakers,
            batch_size=opts.batch_size,
            deadline=(
                Deadline(opts.deadline_ms) if opts.deadline_ms > 0 else None
            ),
            fault_injector=injector,
            on_source_failure=opts.on_source_failure,
            typed_columns=opts.typed_columns,
            morsel_pool=(
                MorselPool(opts.morsel_workers)
                if opts.morsel_workers > 1
                else None
            ),
            fragment_cache=(
                self.fragment_cache if self.fragment_cache.enabled else None
            ),
            health=self.health,
        )
        if config.scheduled:
            context.scheduler = FragmentScheduler(
                config, self.breakers, self.catalog
            )
            if config.parallel:
                mode = f"parallel({config.max_parallel_fragments})"
            else:
                mode = "sequential+timeout"
            context.metrics.scheduler_mode = mode
        return context

    def _execute(self, planned: PlannedQuery, context: ExecutionContext) -> List[Tuple[Any, ...]]:
        """Drain the physical plan batch-at-a-time, prestarting independent
        exchanges so their sources transfer concurrently; always tears the
        scheduler down (abandoning workers of failed/hung fragments) and
        stops the morsel pool."""
        scheduler = context.scheduler
        try:
            if scheduler is None:
                return self._drain_batches(planned.physical, context)
            try:
                if context.scheduler_config.parallel:
                    # Don't prestart a fetch the fragment cache is about to
                    # answer — the worker would charge the network for pages
                    # nobody consumes. (A prestarted exchange may still
                    # *fill* the cache; it just never replays from it.)
                    cache = context.fragment_cache
                    scheduler.prestart(
                        (
                            op
                            for op in planned.physical.walk()
                            if isinstance(op, ExchangeExec)
                            and (cache is None or not cache.would_serve(op.fragment))
                        ),
                        context,
                    )
                return self._drain_batches(planned.physical, context)
            finally:
                scheduler.close(context)
        finally:
            if context.morsel_pool is not None:
                context.morsel_pool.close()

    @staticmethod
    def _drain_batches(root, context: ExecutionContext) -> List[Tuple[Any, ...]]:
        """Materialize the root operator's page stream into result rows,
        recording how the dataflow was batched (non-empty pages only)."""
        rows: List[Tuple[Any, ...]] = []
        batches = 0
        for batch in root.iterate_batches(context):
            if batch:
                batches += 1
                rows.extend(
                    batch.to_rows() if isinstance(batch, Page) else batch
                )
        context.metrics.batches_output = batches
        context.metrics.batch_rows_avg = len(rows) / batches if batches else 0.0
        return rows

    def query(
        self, sql: str, options: Optional[PlannerOptions] = None
    ) -> QueryResult:
        """Plan and execute a query, returning rows plus metrics.

        Also accepts the materialized-view DDL statements (``CREATE
        MATERIALIZED VIEW``, ``REFRESH MATERIALIZED VIEW``, ``DROP
        MATERIALIZED VIEW``); those return a one-row status result."""
        utility = parse_utility(sql)
        if utility is not None:
            return self._execute_utility(utility)
        # Key the result cache on the *plan-shaping* options only —
        # execution-only knobs (typed_columns, morsel_workers, deadlines,
        # fault plans...) change neither rows nor column names, and keying
        # on them caused spurious misses.
        cache_key = (
            sql,
            None if options is None else self._plan_key_options(options),
        )
        if self._result_cache_size > 0:
            with self._cache_lock:
                cached = self._result_cache.get(cache_key)
                if cached is not None:
                    self._result_cache.move_to_end(cache_key)
                    self.cache_hits += 1
                else:
                    self.cache_misses += 1
            if cached is not None:
                # A served-from-cache query performed no fragment probes;
                # replaying the stored per-fragment counters would double
                # count them in the registry.
                hit_metrics = replace(
                    cached.metrics.network,
                    cache_hit=True,
                    fragment_cache_hits=0,
                    fragment_cache_misses=0,
                    fragment_cache_bytes_saved=0.0,
                )
                hit = QueryResult(
                    column_names=list(cached.column_names),
                    rows=list(cached.rows),
                    metrics=QueryMetrics(network=hit_metrics, wall_ms=0.0,
                                         planning_ms=0.0),
                    explain_text=cached.explain_text,
                )
                self.obs.record_query(sql, hit.metrics)
                if self.obs.registry.enabled:
                    self.obs.publish_cache_stats(
                        result_cache=self.result_cache_stats()
                    )
                return hit
        result = self._execute_query(
            sql,
            options,
            lambda tracer, root: self._plan_for_query(sql, options, tracer, root),
        )
        if (
            self._result_cache_size > 0
            and result.complete
            and result.metrics.network.materialized_view_hits == 0
        ):
            # Store a snapshot so callers mutating their result (rows is a
            # plain list) cannot corrupt later cache hits. Partial results
            # are never cached: the excluded source may be back by the next
            # call, and serving its absence from cache would be silent.
            # Results computed from a materialized snapshot are not cached
            # either — their freshness is time-bounded (WITH STALENESS) on
            # a clock the result cache cannot observe.
            with self._cache_lock:
                self._result_cache[cache_key] = QueryResult(
                    column_names=list(result.column_names),
                    rows=list(result.rows),
                    metrics=result.metrics,
                    explain_text=result.explain_text,
                )
                while len(self._result_cache) > self._result_cache_size:
                    self._result_cache.popitem(last=False)
        return result

    def _execute_utility(self, utility: UtilityStatement) -> QueryResult:
        """Run a materialized-view DDL statement; one status row back."""
        started = time.perf_counter()
        if utility.kind == "create_materialized":
            assert utility.select_sql is not None
            self.create_materialized_view(
                utility.name,
                utility.select_sql,
                staleness_ms=utility.staleness_ms,
            )
            view = self.materialized.get(utility.name)
            message = (
                f"materialized view {utility.name} created "
                f"({len(view.rows)} rows)"
            )
        elif utility.kind == "refresh_materialized":
            self.refresh_materialized_view(utility.name)
            view = self.materialized.get(utility.name)
            message = (
                f"materialized view {utility.name} refreshed "
                f"({len(view.rows)} rows)"
            )
        else:
            self.drop_materialized_view(utility.name)
            message = f"materialized view {utility.name} dropped"
        wall_ms = (time.perf_counter() - started) * 1000.0
        return QueryResult(
            column_names=["status"],
            rows=[(message,)],
            metrics=QueryMetrics(network=ExecutionMetrics(), wall_ms=wall_ms),
        )

    def _execute_query(
        self, sql: str, options: Optional[PlannerOptions], plan_fn
    ) -> QueryResult:
        """Plan (via ``plan_fn``) and execute one query with full tracing,
        metrics, and failure accounting. Shared by :meth:`query` and
        prepared-statement execution; the result cache is the caller's
        concern."""
        obs = self.obs
        tracer = obs.tracer
        opts = options or self.planner.options
        root = tracer.root_span("query", force=opts.trace, sql=sql)
        started = time.perf_counter()
        context = None
        planned = None
        try:
            planned, plan_hit = plan_fn(tracer, root)
            context = self._execution_context(options)
            context.metrics.plan_cache_hit = plan_hit
            context.metrics.materialized_view_hits = self._materialized_hits(
                planned
            )
            context.tracer = tracer
            exec_span = tracer.child(root, "phase:execute", "phase")
            context.trace_span = exec_span
            if exec_span:
                profile_operators(planned.physical, tracer=tracer,
                                  parent=exec_span)
            try:
                rows = self._execute(planned, context)
            finally:
                exec_span.end()
            context.metrics.rows_output = len(rows)
        except BaseException as exc:
            root.set_attribute("error", repr(exc))
            wall_ms = (time.perf_counter() - started) * 1000.0
            if context is not None:
                # A failed query still shipped pages, tripped breakers, and
                # burned retries — fold its real transfer totals in.
                obs.record_query(
                    sql,
                    QueryMetrics(
                        network=context.metrics,
                        wall_ms=wall_ms,
                        planning_ms=planned.planning_ms if planned else 0.0,
                    ),
                    failed=True,
                )
            elif obs.registry.enabled:
                obs.registry.counter("queries_total").inc()
                obs.registry.counter("queries_failed_total").inc()
            raise
        finally:
            root.end()
            if obs.registry.enabled:
                obs.publish_breakers(self.breakers)
                obs.publish_health(self.health)
                obs.publish_cache_stats(
                    result_cache=(
                        self.result_cache_stats()
                        if self._result_cache_size > 0
                        else None
                    ),
                    fragment_cache=(
                        self.fragment_cache.stats()
                        if self.fragment_cache.enabled
                        else None
                    ),
                    materialized=(
                        self.materialized.stats()
                        if self.materialized.names()
                        else None
                    ),
                )
            obs.collect()
            obs.maybe_export()
        wall_ms = (time.perf_counter() - started) * 1000.0
        metrics = QueryMetrics(
            network=context.metrics,
            wall_ms=wall_ms,
            planning_ms=planned.planning_ms,
        )
        excluded = dict(context.excluded_sources)
        result = QueryResult(
            column_names=planned.output_names,
            rows=rows,
            metrics=metrics,
            explain_text=planned.explain(),
            complete=not excluded,
            excluded_sources=excluded,
        )
        obs.record_query(sql, metrics, excluded_sources=excluded)
        return result

    def clear_result_cache(self) -> None:
        """Drop every cached result (e.g. after sources changed underneath).

        Also bumps the plan-cache epoch: a catalog change invalidates
        cached plans (schemas, mappings, statistics baked into them), and
        every caller of this method is exactly such a change."""
        with self._cache_lock:
            self._result_cache.clear()
        self.plan_cache.invalidate()

    def notify_source_changed(self, source: str) -> int:
        """Tell the mediator a source's data changed out of band.

        Sources are autonomous — the mediator cannot see their writes.
        This is the hook an application (or test harness) calls when it
        knows data moved: the source's epoch is bumped, which lazily
        invalidates fragment-cache entries and materialized snapshots
        built on the old epoch, and the result cache is dropped (via the
        catalog event the bump publishes). Returns the new epoch.
        """
        return self.catalog.notify_source_changed(source)

    def catalog_status(self) -> Dict[str, Any]:
        """One operator-facing picture of the live catalog: sources with
        their epochs, tables/views with per-entry versions, materialized
        views, and the journal position. Consumed by the REPL's
        ``\\catalog`` command and the serve tier's ``catalog`` op."""
        versions = self.catalog.versions
        sources = [
            {
                "name": name,
                "epoch": versions.current(name),
                "tables": len(self.catalog.tables_on_source(name)),
                "recoverable": self.catalog.source_spec(name) is not None,
            }
            for name in self.catalog.source_names()
        ]
        tables = []
        for name in self.catalog.table_names():
            entry = self.catalog.table(name)
            tables.append(
                {
                    "name": entry.name,
                    "kind": "view" if entry.is_view else "table",
                    "source": entry.mapping.source if entry.mapping else None,
                    "replicas": len(entry.replicas),
                    "schema_version": versions.schema_version(name),
                    "stats_version": versions.stats_version(name),
                    "analyzed": self.catalog.statistics(name) is not None,
                }
            )
        return {
            "catalog_epoch": versions.catalog_epoch,
            "sources": sources,
            "tables": tables,
            "materialized": sorted(self.materialized.names()),
            "journal": (
                self.catalog_journal.position()
                if self.catalog_journal is not None
                else None
            ),
            "recovery": self.catalog_recovery,
            "health": self.health_status(),
        }

    def health_status(
        self, options: Optional[PlannerOptions] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Per-source tail-health picture for operators: latency
        quantiles/EWMA, error rate, hedge win/loss counters, breaker
        state, and the no-progress timeout currently in force (the
        adaptive quantile-derived budget once the source is warm, else
        the static ``fragment_timeout_ms``). Consumed by the REPL's
        ``\\health`` command and the serve tier's ``catalog`` op."""
        opts = options or self.planner.options
        health = self.health.snapshot()
        breakers = self.breakers.snapshot()
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.catalog.source_names():
            key = name.lower()
            entry: Dict[str, Any] = dict(
                health.get(
                    key,
                    {
                        "ewma_ms": None, "p50_ms": None, "p95_ms": None,
                        "p99_ms": None, "samples": 0, "errors": 0,
                        "successes": 0, "error_rate": 0.0,
                        "hedges_launched": 0, "hedges_won": 0,
                    },
                )
            )
            timeout_ms: Optional[float] = None
            adaptive = False
            if opts.adaptive_timeout:
                budget = self.health.adaptive_timeout_ms(
                    key,
                    opts.timeout_multiplier,
                    opts.timeout_floor_ms,
                    opts.timeout_ceiling_ms,
                )
                if budget is not None:
                    timeout_ms, adaptive = budget, True
            if timeout_ms is None and opts.fragment_timeout_ms > 0:
                timeout_ms = opts.fragment_timeout_ms
            entry["timeout_ms"] = timeout_ms
            entry["timeout_adaptive"] = adaptive
            entry["breaker"] = breakers.get(
                key, {"state": "closed", "trips": 0, "failures": 0}
            )
            out[name] = entry
        return out

    def result_cache_stats(self) -> Dict[str, Any]:
        """Hit/miss/occupancy counters for the (sql, options) result cache."""
        with self._cache_lock:
            lookups = self.cache_hits + self.cache_misses
            return {
                "capacity": self._result_cache_size,
                "entries": len(self._result_cache),
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            }

    def explain_analyze(
        self, sql: str, options: Optional[PlannerOptions] = None
    ) -> str:
        """Execute the query and report actuals per physical operator.

        The query really runs (network is charged as usual); the report
        shows the physical tree annotated with produced row and batch
        counts and inclusive wall time per node, plus the transfer
        metrics. When the mediator's tracer is live the run also emits
        operator spans like any traced query.
        """
        obs = self.obs
        tracer = obs.tracer
        root = tracer.root_span("query", sql=sql, analyze=True)
        planned = self.planner.plan(sql, options, tracer=tracer, parent=root)
        context = self._execution_context(options)
        context.tracer = tracer
        exec_span = tracer.child(root, "phase:execute", "phase")
        context.trace_span = exec_span
        profiles = profile_operators(planned.physical, tracer=tracer,
                                     parent=exec_span)
        try:
            rows = self._execute(planned, context)
        finally:
            exec_span.end()
            root.end()
            obs.collect()
            obs.maybe_export()
        sections = [
            "== physical plan (actual rows) ==",
            planned.physical.explain(
                row_counts={op: p.rows for op, p in profiles.items()},
                batch_counts={op: p.batches for op, p in profiles.items()},
                timings={op: p.wall_ms for op, p in profiles.items()},
            ),
            "",
            f"result rows: {len(rows)}",
            QueryMetrics(network=context.metrics).summary(),
        ]
        if context.excluded_sources:
            sections.append("")
            sections.append("== PARTIAL RESULT: excluded sources ==")
            for source, reason in sorted(context.excluded_sources.items()):
                sections.append(f"[{source}] {reason}")
        return "\n".join(sections)

    def explain(self, sql: str, options: Optional[PlannerOptions] = None) -> str:
        """EXPLAIN text: distributed plan, physical plan, and — for SQL
        sources — the native SQL each fragment compiles to."""
        planned = self.planner.plan(sql, options)
        sections = [planned.explain()]
        fragment_sqls = self._fragment_sql(planned)
        if fragment_sqls:
            sections.append("")
            sections.append("== fragment SQL ==")
            sections.extend(fragment_sqls)
        return "\n".join(sections)

    def _fragment_sql(self, planned: PlannedQuery) -> List[str]:
        from .logical import RemoteQueryOp

        lines: List[str] = []
        for node in planned.distributed.walk():
            if isinstance(node, RemoteQueryOp):
                adapter = self.catalog.source(node.source_name)
                compiler = getattr(adapter, "compile_fragment", None)
                if compiler is None:
                    continue
                from .fragments import Fragment

                try:
                    sql = compiler(Fragment(node.source_name, node.fragment))
                except Exception:  # non-SQL fragments (bind placeholders etc.)
                    continue
                lines.append(f"[{node.source_name}] {sql}")
        return lines

    def reference_query(self, sql: str) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        """Evaluate with the unoptimized reference interpreter.

        Bypasses the whole optimizer and executes the bound plan directly
        against full table scans — the differential-testing oracle.
        """
        statement = parse_select(sql)
        bound = Analyzer(self.catalog).bind_statement(statement)

        def provide(scan: ScanOp) -> Iterator[Tuple[Any, ...]]:
            return self._scan_global(scan.table)

        names = [column.name for column in bound.output_columns]
        return names, list(interpret_plan(bound, provide))

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _find_native_table(
        adapter: Adapter, native_name: str
    ) -> Optional[Tuple[str, TableSchema]]:
        """Resolve a native table case-insensitively to (stored key, schema)."""
        tables = adapter.tables()
        if native_name in tables:
            return native_name, tables[native_name]
        for name, schema in tables.items():
            if name.lower() == native_name.lower():
                return name, schema
        return None

    @staticmethod
    def _find_native_schema(adapter: Adapter, native_name: str) -> Optional[TableSchema]:
        resolved = GlobalInformationSystem._find_native_table(adapter, native_name)
        return resolved[1] if resolved is not None else None


class PreparedStatement:
    """A parameterized statement pinned to its prepared plan.

    Obtained from :meth:`GlobalInformationSystem.prepare`. Parameters are
    positional in query-text order — the N-th literal of the original SQL
    is parameter N. ``execute()`` with no arguments re-runs with the
    original literals; with a value list it rebinds the plan (or replans
    when a value the optimizer folded into the plan changed, or the
    catalog epoch moved). Results never come from the result cache, so
    every execute reflects the sources."""

    def __init__(
        self,
        gis: GlobalInformationSystem,
        sql: str,
        options: PlannerOptions,
        param: ParameterizedStatement,
        entry: PreparedPlan,
    ) -> None:
        self._gis = gis
        self.sql = sql
        self.options = options
        self._param = param
        self._entry = entry

    @property
    def parameter_count(self) -> int:
        return self._param.parameter_count

    @property
    def parameter_types(self) -> List[Any]:
        return list(self._param.dtypes)

    def execute(
        self,
        params: Optional[Sequence[Any]] = None,
        options: Optional[PlannerOptions] = None,
    ) -> QueryResult:
        """Execute with ``params`` bound in place of the original literals."""
        opts = options or self.options
        values = (
            list(params) if params is not None else list(self._param.values)
        )
        if len(values) != self._param.parameter_count:
            raise PlanError(
                f"prepared statement takes {self._param.parameter_count} "
                f"parameter(s), got {len(values)}"
            )
        for slot, (value, dtype) in enumerate(zip(values, self._param.dtypes)):
            if value is None:
                continue
            expected = _PARAM_PYTHON_TYPES.get(dtype)
            if expected is not None and not isinstance(value, expected):
                raise PlanError(
                    f"parameter {slot} expects {dtype.name}, got "
                    f"{type(value).__name__} ({value!r})"
                )

        def plan_fn(tracer, root):
            cache = self._gis.plan_cache
            entry = self._entry
            if entry.epoch == cache.epoch:
                bound = entry.bind(self.sql, values, self._gis.catalog, opts)
                if bound is not None:
                    cache.record_hit()
                    return bound, True
            statement = bind_statement_values(self._param.statement, values)
            with self._gis.materialized.suspended():
                planned = self._gis.planner.plan_statement(
                    statement, self.sql, opts, tracer=tracer, parent=root
                )
            self._entry = PreparedPlan(
                entry.shape_key, entry.options, planned,
                values, self._param.dtypes, cache.epoch,
                statement=statement,
            )
            cache.store(self._entry)
            return planned, False

        return self._gis._execute_query(self.sql, opts, plan_fn)


#: Accepted Python types per global parameter type (NULL always allowed).
_PARAM_PYTHON_TYPES = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (int, float),
    DataType.TEXT: (str,),
    DataType.BOOLEAN: (bool,),
    DataType.DATE: (date,),
}

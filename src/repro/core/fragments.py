"""Fragments: the unit of work shipped to a component system.

A :class:`Fragment` is a self-contained logical plan whose scan leaves all
belong to one source. The pushdown planner builds fragments within the
source's declared capability envelope; wrappers either compile them to
native SQL (:class:`~repro.sources.sqlite.SQLiteSource`) or interpret them
with :func:`interpret_plan`.

:func:`interpret_plan` is also the library's **reference executor**: a
direct, unoptimized evaluation of any logical plan given base-table rows.
The test suite runs it against the optimized federated engine on the same
queries (differential testing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..sql import ast
from .aggregates import make_accumulator, sort_rows
from .expressions import build_layout, compile_expression, compile_predicate
from .logical import (
    AggregateCall,
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    LogicalPlan,
    ProjectOp,
    RelColumn,
    RemoteQueryOp,
    ScanOp,
    SetDifferenceOp,
    SortOp,
    UnionOp,
    ValuesOp,
    WindowOp,
    WindowSpec,
)

#: Provides base rows for a scan leaf: fn(scan_op) -> iterator of tuples.
ScanProvider = Callable[[ScanOp], Iterator[Tuple[Any, ...]]]


@dataclass
class Fragment:
    """One source-executable subplan.

    ``plan.output_columns`` defines the row layout the wrapper must produce;
    ``source_name`` is the owning component system. Semijoin bind lists
    arrive as ordinary IN-filters injected into a copy of the plan at run
    time (see :class:`~repro.core.physical.BindJoinExec`).
    """

    source_name: str
    plan: LogicalPlan

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.plan.output_columns

    def scans(self) -> List[ScanOp]:
        """All scan leaves of the fragment."""
        return [node for node in self.plan.walk() if isinstance(node, ScanOp)]


def interpret_plan(
    plan: LogicalPlan, scan_provider: ScanProvider
) -> Iterator[Tuple[Any, ...]]:
    """Directly evaluate a logical plan (reference semantics, no optimizer).

    Joins build a hash table when the condition is a conjunction of
    equalities, else fall back to nested loops; everything is evaluated
    eagerly enough to be obviously correct rather than fast.
    """
    if isinstance(plan, ScanOp):
        yield from scan_provider(plan)
        return
    if isinstance(plan, ValuesOp):
        yield from iter(plan.rows)
        return
    if isinstance(plan, RemoteQueryOp):
        raise ExecutionError(
            "the reference interpreter evaluates pre-pushdown plans only"
        )
    if isinstance(plan, FilterOp):
        layout = build_layout(plan.child.output_columns)
        predicate = compile_predicate(plan.predicate, layout)
        for row in interpret_plan(plan.child, scan_provider):
            if predicate(row):
                yield row
        return
    if isinstance(plan, ProjectOp):
        layout = build_layout(plan.child.output_columns)
        functions = [compile_expression(e, layout) for e in plan.expressions]
        for row in interpret_plan(plan.child, scan_provider):
            yield tuple(fn(row) for fn in functions)
        return
    if isinstance(plan, JoinOp):
        yield from _interpret_join(plan, scan_provider)
        return
    if isinstance(plan, AggregateOp):
        yield from _interpret_aggregate(plan, scan_provider)
        return
    if isinstance(plan, WindowOp):
        rows = list(interpret_plan(plan.child, scan_provider))
        yield from apply_window(rows, plan.child.output_columns, plan.specs)
        return
    if isinstance(plan, SortOp):
        layout = build_layout(plan.child.output_columns)
        key_fns = [compile_expression(expr, layout) for expr, _ in plan.keys]
        directions = [ascending for _, ascending in plan.keys]
        rows = list(interpret_plan(plan.child, scan_provider))
        yield from sort_rows(rows, key_fns, directions)
        return
    if isinstance(plan, LimitOp):
        remaining = plan.limit
        to_skip = plan.offset
        for row in interpret_plan(plan.child, scan_provider):
            if to_skip > 0:
                to_skip -= 1
                continue
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            yield row
        return
    if isinstance(plan, DistinctOp):
        seen = set()
        for row in interpret_plan(plan.child, scan_provider):
            if row not in seen:
                seen.add(row)
                yield row
        return
    if isinstance(plan, UnionOp):
        if plan.all:
            for child in plan.inputs:
                yield from interpret_plan(child, scan_provider)
            return
        seen = set()
        for child in plan.inputs:
            for row in interpret_plan(child, scan_provider):
                if row not in seen:
                    seen.add(row)
                    yield row
        return
    if isinstance(plan, SetDifferenceOp):
        left_rows = list(interpret_plan(plan.left, scan_provider))
        if plan.all:
            # Bag semantics: EXCEPT ALL subtracts multiplicities,
            # INTERSECT ALL takes their minimum.
            from collections import Counter

            remaining = Counter(interpret_plan(plan.right, scan_provider))
            for row in left_rows:
                if remaining[row] > 0:
                    remaining[row] -= 1
                    if plan.operation == "INTERSECT":
                        yield row
                elif plan.operation == "EXCEPT":
                    yield row
            return
        right_rows = set(interpret_plan(plan.right, scan_provider))
        emitted = set()
        if plan.operation == "EXCEPT":
            for row in left_rows:
                if row not in right_rows and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        if plan.operation == "INTERSECT":
            for row in left_rows:
                if row in right_rows and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        raise ExecutionError(f"unknown set operation {plan.operation!r}")
    raise ExecutionError(f"cannot interpret plan node {type(plan).__name__}")


def equi_join_keys(
    condition: Optional[ast.Expr],
    left_columns: Sequence[RelColumn],
    right_columns: Sequence[RelColumn],
) -> Optional[Tuple[List[ast.Expr], List[ast.Expr], List[ast.Expr]]]:
    """Split a join condition into equi-key pairs plus a residual.

    Returns ``(left_keys, right_keys, residual_conjuncts)`` when at least one
    conjunct is ``left_expr = right_expr`` with each side referencing only
    one input; otherwise ``None``.
    """
    if condition is None:
        return None
    left_ids = {c.column_id for c in left_columns}
    right_ids = {c.column_id for c in right_columns}
    left_keys: List[ast.Expr] = []
    right_keys: List[ast.Expr] = []
    residual: List[ast.Expr] = []
    for conjunct in ast.conjuncts(condition):
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            lhs_cols = {c.column_id for c in ast.referenced_columns(conjunct.left)}
            rhs_cols = {c.column_id for c in ast.referenced_columns(conjunct.right)}
            if lhs_cols and rhs_cols:
                if lhs_cols <= left_ids and rhs_cols <= right_ids:
                    left_keys.append(conjunct.left)
                    right_keys.append(conjunct.right)
                    continue
                if lhs_cols <= right_ids and rhs_cols <= left_ids:
                    left_keys.append(conjunct.right)
                    right_keys.append(conjunct.left)
                    continue
        residual.append(conjunct)
    if not left_keys:
        return None
    return left_keys, right_keys, residual


def _interpret_join(
    plan: JoinOp, scan_provider: ScanProvider
) -> Iterator[Tuple[Any, ...]]:
    left_columns = plan.left.output_columns
    right_columns = plan.right.output_columns
    left_rows = list(interpret_plan(plan.left, scan_provider))
    right_rows = list(interpret_plan(plan.right, scan_provider))

    if plan.kind == "CROSS":
        for left_row in left_rows:
            for right_row in right_rows:
                yield left_row + right_row
        return

    combined_layout = build_layout(list(left_columns) + list(right_columns))
    condition_fn = (
        compile_predicate(plan.condition, combined_layout)
        if plan.condition is not None
        else None
    )

    if plan.kind == "INNER":
        for left_row in left_rows:
            for right_row in right_rows:
                row = left_row + right_row
                if condition_fn is None or condition_fn(row):
                    yield row
        return
    if plan.kind == "LEFT":
        null_row = (None,) * len(right_columns)
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                row = left_row + right_row
                if condition_fn is None or condition_fn(row):
                    matched = True
                    yield row
            if not matched:
                yield left_row + null_row
        return
    if plan.kind in ("SEMI", "ANTI"):
        yield from _interpret_semi_anti(
            plan, left_rows, right_rows, right_columns, condition_fn
        )
        return
    raise ExecutionError(f"unknown join kind {plan.kind!r}")


def _interpret_semi_anti(
    plan: JoinOp,
    left_rows: List[Tuple[Any, ...]],
    right_rows: List[Tuple[Any, ...]],
    right_columns: Sequence[RelColumn],
    condition_fn: Optional[Callable[[Tuple[Any, ...]], bool]],
) -> Iterator[Tuple[Any, ...]]:
    if plan.kind == "ANTI" and plan.null_aware and plan.condition is not None:
        # NOT IN: any NULL key on the right kills everything; NULL probe
        # keys never qualify.
        keys = equi_join_keys(
            plan.condition, plan.left.output_columns, right_columns
        )
        if keys is not None:
            _, right_key_exprs, _ = keys
            right_layout = build_layout(right_columns)
            key_fns = [compile_expression(e, right_layout) for e in right_key_exprs]
            for right_row in right_rows:
                if any(fn(right_row) is None for fn in key_fns):
                    return
    for left_row in left_rows:
        matched = False
        if condition_fn is None:
            matched = bool(right_rows)
        else:
            for right_row in right_rows:
                if condition_fn(left_row + right_row):
                    matched = True
                    break
        if plan.kind == "SEMI" and matched:
            yield left_row
        elif plan.kind == "ANTI" and not matched:
            if plan.null_aware and plan.condition is not None and _probe_is_null(
                plan, left_row
            ):
                continue
            yield left_row


def _probe_is_null(plan: JoinOp, left_row: Tuple[Any, ...]) -> bool:
    keys = equi_join_keys(
        plan.condition, plan.left.output_columns, plan.right.output_columns
    )
    if keys is None:
        return False
    left_key_exprs, _, _ = keys
    layout = build_layout(plan.left.output_columns)
    return any(
        compile_expression(expr, layout)(left_row) is None
        for expr in left_key_exprs
    )


def apply_window(
    rows: List[Tuple[Any, ...]],
    columns: Sequence[RelColumn],
    specs: Sequence[WindowSpec],
) -> List[Tuple[Any, ...]]:
    """Evaluate window specs over materialized rows (shared by the physical
    operator and the reference interpreter). Output preserves input order,
    with one appended column per spec."""
    from .aggregates import sort_key_function

    layout = build_layout(columns)
    per_spec_values: List[List[Any]] = []
    for spec in specs:
        partition_fns = [compile_expression(p, layout) for p in spec.partition_by]
        order_fns = [
            (compile_expression(key, layout), ascending)
            for key, ascending in spec.order_keys
        ]
        partitions: Dict[Tuple[Any, ...], List[int]] = {}
        for index, row in enumerate(rows):
            key = tuple(fn(row) for fn in partition_fns)
            partitions.setdefault(key, []).append(index)
        values: List[Any] = [None] * len(rows)
        ranking = spec.function in ("ROW_NUMBER", "RANK", "DENSE_RANK")
        for indexes in partitions.values():
            if ranking:
                ordered = list(indexes)
                for fn, ascending in reversed(order_fns):
                    wrapper = sort_key_function(ascending)
                    ordered.sort(
                        key=lambda i, f=fn, w=wrapper: w(f(rows[i])),
                        reverse=not ascending,
                    )
                previous_key = object()
                rank = dense = 0
                for position, index in enumerate(ordered, start=1):
                    current_key = tuple(fn(rows[index]) for fn, _ in order_fns)
                    if current_key != previous_key:
                        rank = position
                        dense += 1
                        previous_key = current_key
                    values[index] = {
                        "ROW_NUMBER": position,
                        "RANK": rank,
                        "DENSE_RANK": dense,
                    }[spec.function]
            else:
                accumulator = make_accumulator(
                    AggregateCall(spec.function, spec.argument, False)
                )
                argument_fn = (
                    compile_expression(spec.argument, layout)
                    if spec.argument is not None
                    else None
                )
                for index in indexes:
                    accumulator.add(
                        argument_fn(rows[index]) if argument_fn is not None else 1
                    )
                result = accumulator.result()
                for index in indexes:
                    values[index] = result
        per_spec_values.append(values)
    return [
        row + tuple(values[index] for values in per_spec_values)
        for index, row in enumerate(rows)
    ]


def _interpret_aggregate(
    plan: AggregateOp, scan_provider: ScanProvider
) -> Iterator[Tuple[Any, ...]]:
    layout = build_layout(plan.child.output_columns)
    group_fns = [compile_expression(e, layout) for e in plan.group_expressions]
    argument_fns = [
        compile_expression(call.argument, layout) if call.argument is not None else None
        for call in plan.aggregates
    ]
    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    order: List[Tuple[Any, ...]] = []
    for row in interpret_plan(plan.child, scan_provider):
        key = tuple(fn(row) for fn in group_fns)
        state = groups.get(key)
        if state is None:
            state = [make_accumulator(call) for call in plan.aggregates]
            groups[key] = state
            order.append(key)
        for accumulator, arg_fn in zip(state, argument_fns):
            accumulator.add(arg_fn(row) if arg_fn is not None else 1)
    if not groups and not plan.group_expressions:
        # Global aggregate over empty input: one row of empty-group results.
        state = [make_accumulator(call) for call in plan.aggregates]
        yield tuple(acc.result() for acc in state)
        return
    for key in order:
        yield key + tuple(acc.result() for acc in groups[key])

"""Logical relational algebra.

A logical plan is a tree of operator dataclasses whose expressions reference
columns through :class:`RelColumn` objects with *identity* semantics: every
scan instance mints fresh columns, so self-joins, renamed views, and moved
predicates can never be confused by name. Physical planning later maps each
operator's output columns to row positions.

Every operator exposes ``output_columns`` (its schema), ``children()``, and
``with_children()`` so rewrite rules can traverse generically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..catalog.catalog import CatalogTable
from ..datatypes import DataType
from ..errors import PlanError
from ..sql import ast

_column_ids = itertools.count(1)


class RelColumn:
    """A column of one relation *instance* inside a plan.

    ``origin`` preserves the (global table name, column name) lineage for
    statistics lookups; derived columns (computed expressions, aggregate
    results) have ``origin=None``. Equality is identity.
    """

    __slots__ = ("name", "dtype", "origin", "column_id")

    def __init__(
        self,
        name: str,
        dtype: DataType,
        origin: Optional[Tuple[str, str]] = None,
    ) -> None:
        self.name = name
        self.dtype = dtype
        self.origin = origin
        self.column_id = next(_column_ids)

    def ref(self) -> ast.BoundRef:
        """A bound expression referencing this column."""
        return ast.BoundRef(self)

    def derive(self, name: Optional[str] = None) -> "RelColumn":
        """A fresh column with the same type and lineage (new identity)."""
        return RelColumn(name or self.name, self.dtype, self.origin)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"${self.column_id}:{self.name}"


@dataclass(frozen=True)
class AggregateCall:
    """One aggregate computation: ``function(argument)`` with DISTINCT flag.

    ``argument`` is None for ``COUNT(*)``.
    """

    function: str  # COUNT | SUM | AVG | MIN | MAX
    argument: Optional[ast.Expr]
    distinct: bool = False


class LogicalPlan:
    """Base class for logical operators."""

    @property
    def output_columns(self) -> List[RelColumn]:
        raise NotImplementedError

    def children(self) -> List["LogicalPlan"]:
        raise NotImplementedError

    def with_children(self, children: List["LogicalPlan"]) -> "LogicalPlan":
        """A copy of this node with replaced children (same arity)."""
        raise NotImplementedError

    # -- conveniences --------------------------------------------------------

    def walk(self) -> Iterator["LogicalPlan"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def column_by_name(self, name: str) -> RelColumn:
        """Find an output column by (case-insensitive) name; raise if absent."""
        for column in self.output_columns:
            if column.name.lower() == name.lower():
                return column
        raise PlanError(f"plan has no output column named {name!r}")


@dataclass
class ScanOp(LogicalPlan):
    """Scan of a global base table (leaf until pushdown replaces it).

    ``mapping`` overrides the catalog's primary mapping when the replica
    selector chose a different copy of the table; adapters and planners
    must always go through :attr:`effective_mapping`.
    """

    table: CatalogTable
    binding_name: str
    columns: List[RelColumn]
    mapping: Optional[Any] = None  # TableMapping replica override

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.columns

    def children(self) -> List[LogicalPlan]:
        return []

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        if children:
            raise PlanError("ScanOp takes no children")
        return self

    @property
    def effective_mapping(self):
        """The mapping this scan actually uses (replica override or primary)."""
        mapping = self.mapping or self.table.mapping
        if mapping is None:
            raise PlanError(f"table {self.table.name!r} has no source mapping")
        return mapping

    @property
    def source_name(self) -> str:
        """The component system holding this table."""
        return self.effective_mapping.source


@dataclass
class FilterOp(LogicalPlan):
    """Row selection by a boolean predicate."""

    child: LogicalPlan
    predicate: ast.Expr

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.child.output_columns

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        (child,) = children
        return FilterOp(child, self.predicate)


@dataclass
class ProjectOp(LogicalPlan):
    """Computes ``expressions`` and names the results ``columns`` (1:1)."""

    child: LogicalPlan
    expressions: List[ast.Expr]
    columns: List[RelColumn]

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.columns

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        (child,) = children
        return ProjectOp(child, self.expressions, self.columns)

    def is_trivial(self) -> bool:
        """True if this projection merely forwards the child's columns."""
        child_columns = self.child.output_columns
        if len(self.expressions) != len(child_columns):
            return False
        for expr, child_column, out in zip(
            self.expressions, child_columns, self.columns
        ):
            if not isinstance(expr, ast.BoundRef) or expr.column is not child_column:
                return False
            if out.name.lower() != child_column.name.lower():
                return False
        return True


JOIN_KINDS = ("INNER", "LEFT", "CROSS", "SEMI", "ANTI")


@dataclass
class JoinOp(LogicalPlan):
    """Binary join. SEMI/ANTI output only the left side's columns.

    ``null_aware`` marks an ANTI join produced from ``NOT IN``: if the right
    side contains any NULL key the join emits nothing, and left rows with a
    NULL probe key are dropped (SQL NOT IN semantics).
    """

    left: LogicalPlan
    right: LogicalPlan
    kind: str = "INNER"
    condition: Optional[ast.Expr] = None
    null_aware: bool = False

    def __post_init__(self) -> None:
        if self.kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind: {self.kind!r}")

    @property
    def output_columns(self) -> List[RelColumn]:
        if self.kind in ("SEMI", "ANTI"):
            return self.left.output_columns
        return self.left.output_columns + self.right.output_columns

    def children(self) -> List[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        left, right = children
        return JoinOp(left, right, self.kind, self.condition, self.null_aware)


@dataclass
class AggregateOp(LogicalPlan):
    """Grouped aggregation.

    Output columns are ``group_columns + aggregate_columns``, where
    ``group_columns[i]`` names the value of ``group_expressions[i]`` and
    ``aggregate_columns[j]`` names the result of ``aggregates[j]``. A global
    aggregate has no group expressions and emits exactly one row.
    """

    child: LogicalPlan
    group_expressions: List[ast.Expr]
    group_columns: List[RelColumn]
    aggregates: List[AggregateCall]
    aggregate_columns: List[RelColumn]

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.group_columns + self.aggregate_columns

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        (child,) = children
        return AggregateOp(
            child,
            self.group_expressions,
            self.group_columns,
            self.aggregates,
            self.aggregate_columns,
        )


@dataclass(frozen=True)
class WindowSpec:
    """One window computation over the child's rows.

    ``function`` is ROW_NUMBER/RANK/DENSE_RANK (argument None) or an
    aggregate name; aggregates compute over the whole partition (no
    frames). ``order_keys`` only affect ranking functions.
    """

    function: str
    argument: Optional[ast.Expr]
    partition_by: Tuple[ast.Expr, ...]
    order_keys: Tuple[Tuple[ast.Expr, bool], ...]


@dataclass
class WindowOp(LogicalPlan):
    """Appends one computed column per window spec to the child's rows."""

    child: LogicalPlan
    specs: List[WindowSpec]
    window_columns: List[RelColumn]

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.child.output_columns + self.window_columns

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        (child,) = children
        return WindowOp(child, self.specs, self.window_columns)


@dataclass
class SortOp(LogicalPlan):
    """Total order by a list of (expression, ascending) keys."""

    child: LogicalPlan
    keys: List[Tuple[ast.Expr, bool]]

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.child.output_columns

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        (child,) = children
        return SortOp(child, self.keys)


@dataclass
class LimitOp(LogicalPlan):
    """Row-count limit with optional offset."""

    child: LogicalPlan
    limit: Optional[int]
    offset: int = 0

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.child.output_columns

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        (child,) = children
        return LimitOp(child, self.limit, self.offset)


@dataclass
class DistinctOp(LogicalPlan):
    """Duplicate elimination over all output columns."""

    child: LogicalPlan

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.child.output_columns

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        (child,) = children
        return DistinctOp(child)


@dataclass
class UnionOp(LogicalPlan):
    """N-ary UNION [ALL]; children line up positionally with ``columns``."""

    inputs: List[LogicalPlan]
    columns: List[RelColumn]
    all: bool = True

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.columns

    def children(self) -> List[LogicalPlan]:
        return list(self.inputs)

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        return UnionOp(list(children), self.columns, self.all)


@dataclass
class SetDifferenceOp(LogicalPlan):
    """EXCEPT / INTERSECT, set semantics by default, bag with ``all``.

    Bag semantics follow the SQL standard: ``EXCEPT ALL`` subtracts
    multiplicities, ``INTERSECT ALL`` takes their minimum.
    """

    left: LogicalPlan
    right: LogicalPlan
    operation: str  # "EXCEPT" | "INTERSECT"
    columns: List[RelColumn] = field(default_factory=list)
    all: bool = False

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.columns

    def children(self) -> List[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        left, right = children
        return SetDifferenceOp(left, right, self.operation, self.columns, self.all)


@dataclass
class ValuesOp(LogicalPlan):
    """Literal rows (used for FROM-less SELECTs: one empty row)."""

    rows: List[Tuple[Any, ...]]
    columns: List[RelColumn]

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.columns

    def children(self) -> List[LogicalPlan]:
        return []

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        if children:
            raise PlanError("ValuesOp takes no children")
        return self


@dataclass
class MaterializedRowsOp(ValuesOp):
    """A materialized view snapshot spliced into a plan at bind time.

    Behaves exactly like :class:`ValuesOp` everywhere (physical planning,
    interpretation, cardinality) — the subclass exists so EXPLAIN shows
    the substitution, the mediator can count materialized-view hits, and
    plan/result caches can refuse to store plans whose rows would go
    stale on a clock the caches cannot observe.
    """

    view_name: str = ""


@dataclass(frozen=True)
class BindSpec:
    """Semijoin (bind-join) reduction attached to a remote fragment.

    At run time the executor materializes the join's other side, extracts
    the distinct values of ``probe_key`` (an expression over that side's
    output), and executes the fragment once per batch of at most
    ``batch_size`` keys with ``fragment_key IN (<batch>)`` injected — the
    SDD-1 semijoin realized as a bind join.
    """

    probe_key: ast.Expr
    fragment_key: RelColumn
    batch_size: int


@dataclass
class RemoteQueryOp(LogicalPlan):
    """A fragment delegated to one component system.

    ``fragment`` is a self-contained logical plan whose leaves are ScanOps of
    tables on ``source_name``; the wrapper executes it natively (SQL
    sources compile it; others interpret within their capability envelope).
    ``columns`` are the *same* RelColumn objects as the fragment's output, so
    upstream references remain valid across the cut.

    ``estimated_rows`` is stamped by the pushdown planner so later phases
    need not re-derive fragment cardinality. ``bind`` (if set) is a semijoin
    reduction; see :class:`BindSpec`.
    """

    source_name: str
    fragment: LogicalPlan
    columns: List[RelColumn]
    estimated_rows: float = 0.0
    bind: Optional[BindSpec] = None

    @property
    def output_columns(self) -> List[RelColumn]:
        return self.columns

    def children(self) -> List[LogicalPlan]:
        # The fragment is *not* a child: rewrites above the source boundary
        # must not reach into it.
        return []

    def with_children(self, children: List[LogicalPlan]) -> LogicalPlan:
        if children:
            raise PlanError("RemoteQueryOp takes no children")
        return self


# ---------------------------------------------------------------------------
# Plan utilities
# ---------------------------------------------------------------------------


def transform_plan(plan: LogicalPlan, fn) -> LogicalPlan:
    """Bottom-up plan rewrite. ``fn(node) -> node | None`` (None keeps it)."""
    children = plan.children()
    new_children = [transform_plan(child, fn) for child in children]
    if any(new is not old for new, old in zip(new_children, children)):
        plan = plan.with_children(new_children)
    replacement = fn(plan)
    return replacement if replacement is not None else plan


def plan_columns_set(plan: LogicalPlan) -> set:
    """Identity set (ids) of the plan's output columns."""
    return {id(column) for column in plan.output_columns}


def explain_plan(
    plan: LogicalPlan,
    indent: int = 0,
    estimates: Optional[Dict[int, float]] = None,
) -> str:
    """Human-readable plan tree (used by EXPLAIN and tests).

    ``estimates`` optionally maps ``id(node)`` to estimated output rows;
    annotated as ``~N rows`` after each node that has one.
    """
    pad = "  " * indent
    label = type(plan).__name__.replace("Op", "")
    details = ""
    if isinstance(plan, ScanOp):
        details = f" {plan.table.name}"
        if plan.binding_name.lower() != plan.table.name.lower():
            details += f" AS {plan.binding_name}"
    elif isinstance(plan, FilterOp):
        details = f" [{_safe_expr(plan.predicate)}]"
    elif isinstance(plan, ProjectOp):
        details = " [" + ", ".join(c.name for c in plan.columns) + "]"
    elif isinstance(plan, JoinOp):
        details = f" {plan.kind}"
        if plan.condition is not None:
            details += f" [{_safe_expr(plan.condition)}]"
    elif isinstance(plan, AggregateOp):
        groups = ", ".join(c.name for c in plan.group_columns) or "()"
        aggs = ", ".join(
            f"{a.function}({'*' if a.argument is None else _safe_expr(a.argument)})"
            for a in plan.aggregates
        )
        details = f" groups=[{groups}] aggs=[{aggs}]"
    elif isinstance(plan, SortOp):
        details = " [" + ", ".join(
            _safe_expr(expr) + ("" if asc else " DESC") for expr, asc in plan.keys
        ) + "]"
    elif isinstance(plan, LimitOp):
        details = f" limit={plan.limit} offset={plan.offset}"
    elif isinstance(plan, UnionOp):
        details = " ALL" if plan.all else ""
    elif isinstance(plan, SetDifferenceOp):
        details = f" {plan.operation}"
    elif isinstance(plan, RemoteQueryOp):
        details = f" source={plan.source_name} est_rows={plan.estimated_rows:.0f}"
        if plan.bind is not None:
            details += f" bind[{plan.bind.fragment_key.name}]"
    if estimates is not None and id(plan) in estimates:
        details += f"  ~{estimates[id(plan)]:.0f} rows"
    lines = [f"{pad}{label}{details}"]
    if isinstance(plan, RemoteQueryOp):
        lines.append(explain_plan(plan.fragment, indent + 1, estimates))
    for child in plan.children():
        lines.append(explain_plan(child, indent + 1, estimates))
    return "\n".join(lines)


def _safe_expr(expr: ast.Expr) -> str:
    """Render a bound expression for EXPLAIN (falls back on node names)."""
    from ..sql import printer

    class _ExplainDialect(printer.SQLDialect):
        def quote_identifier(self, identifier: str) -> str:
            return identifier

    try:
        converted = _refs_to_names(expr)
        return printer.print_expression(converted, _ExplainDialect())
    except Exception:  # pragma: no cover - defensive
        return type(expr).__name__


def _refs_to_names(expr: ast.Expr) -> ast.Expr:
    def convert(node: ast.Expr):
        if isinstance(node, ast.BoundRef):
            return ast.ColumnRef(None, node.column.name)
        return None

    return ast.transform_expression(expr, convert)

"""Semijoin (bind-join) reduction planning — SDD-1's core idea.

After pushdown, every cross-source join moves both inputs to the mediator
in full. When one input is small (or heavily filtered), shipping its join
keys *to the other input's source* and fetching only matching rows can cut
the dominant transfer dramatically — at the price of one extra round of
messages. This planner finds eligible joins, prices both strategies with
the cost model, and attaches a :class:`~repro.core.logical.BindSpec` to the
remote side when the semijoin wins (experiment F1 sweeps the bandwidth that
decides the crossover).

Eligibility for reducing remote side R by probe side P:

* the join is INNER or SEMI, its condition contains exactly-one-column
  equi-key ``p = r`` with ``r`` a bare column of R's fragment output;
* R is a direct ``RemoteQueryOp`` without an existing bind;
* R's source accepts an injected ``r IN (<literals>)`` filter (envelope:
  filters + IN with a positive list cap, or a key-lookup source whose key
  is exactly ``r``).

At runtime the attached bind executes as
:class:`~repro.core.physical.BindJoinExec`: probe keys are collected
batch-at-a-time, each bind list ships as one request, and the reduced
result streams back page-granularly at the remote source's page size —
so the message accounting priced here is exactly what execution charges,
at every ``batch_size``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..catalog.catalog import Catalog
from ..datatypes import wire_width
from ..sql import ast
from .cardinality import Estimator
from .cost import CostModel
from .fragments import equi_join_keys
from .logical import (
    BindSpec,
    JoinOp,
    LogicalPlan,
    ProjectOp,
    RelColumn,
    RemoteQueryOp,
    ScanOp,
    transform_plan,
)
from ..sql.ast import BoundRef


def _unwrap_remote(plan: LogicalPlan) -> Optional[RemoteQueryOp]:
    """The RemoteQueryOp behind ``plan``, seeing through an
    identity-forwarding projection (the shape column pruning leaves over
    projection-less sources). Returns None for anything else."""
    if isinstance(plan, RemoteQueryOp):
        return plan
    if isinstance(plan, ProjectOp) and isinstance(plan.child, RemoteQueryOp):
        forwards_identity = all(
            isinstance(expr, BoundRef) and expr.column is column
            for expr, column in zip(plan.expressions, plan.columns)
        )
        if forwards_identity:
            return plan.child
    return None

SEMIJOIN_MODES = ("auto", "off", "force")

#: Never send more than this many keys per IN batch, whatever the source says.
MAX_BATCH = 1000


@dataclass
class SemijoinDecision:
    """Diagnostics for one considered join (read by tests and benches)."""

    applied: bool
    reason: str
    full_cost_ms: float = 0.0
    reduced_cost_ms: float = 0.0


class SemijoinPlanner:
    """Attaches bind specs to profitable remote join inputs."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: Estimator,
        cost_model: CostModel,
        mode: str = "auto",
    ) -> None:
        if mode not in SEMIJOIN_MODES:
            raise ValueError(f"unknown semijoin mode {mode!r}")
        self._catalog = catalog
        self._estimator = estimator
        self._cost = cost_model
        self._mode = mode
        self.decisions: List[SemijoinDecision] = []

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        self.decisions = []
        if self._mode == "off":
            return plan

        def visit(node: LogicalPlan) -> Optional[LogicalPlan]:
            if isinstance(node, JoinOp) and node.kind in ("INNER", "SEMI"):
                return self._consider(node)
            return None

        return transform_plan(plan, visit)

    # -- per-join decision ------------------------------------------------------

    def _consider(self, join: JoinOp) -> Optional[JoinOp]:
        keys = equi_join_keys(
            join.condition, join.left.output_columns, join.right.output_columns
        )
        if keys is None:
            return None
        left_keys, right_keys, _ = keys

        # Try to reduce the right side by the left, and (for INNER) vice versa.
        candidates: List[Tuple[ast.Expr, ast.Expr, str]] = []
        for probe, remote_key in zip(left_keys, right_keys):
            candidates.append((probe, remote_key, "right"))
        if join.kind == "INNER":
            for probe, remote_key in zip(right_keys, left_keys):
                candidates.append((probe, remote_key, "left"))

        best: Optional[Tuple[float, SemijoinDecision, ast.Expr, RelColumn, int, str]] = None
        for probe_key, remote_key, side in candidates:
            child = join.right if side == "right" else join.left
            probe_plan = join.left if side == "right" else join.right
            remote = _unwrap_remote(child)
            if remote is None or remote.bind is not None:
                continue
            if not isinstance(remote_key, ast.BoundRef):
                continue
            fragment_key = remote_key.column
            if fragment_key.column_id not in {
                c.column_id for c in remote.columns
            }:
                continue
            batch = self._bindable_batch(remote, fragment_key)
            if batch is None:
                self.decisions.append(
                    SemijoinDecision(False, "source cannot accept a key list")
                )
                continue
            decision = self._evaluate(remote, probe_plan, probe_key, fragment_key, batch)
            self.decisions.append(decision)
            benefit = decision.full_cost_ms - decision.reduced_cost_ms
            applicable = decision.applied or self._mode == "force"
            if applicable and (best is None or benefit > best[0]):
                best = (benefit, decision, probe_key, fragment_key, batch, side)
        if best is None:
            return None
        _, _, probe_key, fragment_key, batch, side = best
        child = join.right if side == "right" else join.left
        remote = _unwrap_remote(child)
        assert remote is not None
        new_remote = RemoteQueryOp(
            source_name=remote.source_name,
            fragment=remote.fragment,
            columns=remote.columns,
            estimated_rows=remote.estimated_rows,
            bind=BindSpec(probe_key, fragment_key, batch),
        )
        # The unwrapped projection only forwarded identity columns, so the
        # bound remote replaces it outright (the join is already referencing
        # those columns by identity; the extra ones ride along harmlessly —
        # the wire cost is unchanged because the source ships full rows).
        new_child: LogicalPlan = new_remote
        if side == "right":
            return JoinOp(
                join.left, new_child, join.kind, join.condition, join.null_aware
            )
        return JoinOp(
            new_child, join.right, join.kind, join.condition, join.null_aware
        )

    def _bindable_batch(
        self, remote: RemoteQueryOp, fragment_key: RelColumn
    ) -> Optional[int]:
        """Batch size the source accepts for an injected key filter, or None."""
        adapter = self._catalog.source(remote.source_name)
        caps = adapter.capabilities()
        if caps.key_equality_only is not None:
            # Key-lookup sources: fragment must be a bare scan and the key
            # column must be *the* key.
            if not isinstance(remote.fragment, ScanOp):
                return None
            scan = remote.fragment
            mapping = scan.effective_mapping
            if mapping is None:
                return None
            key_column = None
            for table_name, column in caps.key_equality_only.items():
                if table_name.lower() == mapping.remote_table.lower():
                    key_column = column
                    break
            if key_column is None:
                return None
            if mapping.remote_column(fragment_key.name).lower() != key_column.lower():
                return None
            return min(caps.in_list_max or MAX_BATCH, MAX_BATCH)
        if not caps.filters or "IN" not in caps.predicate_ops or caps.in_list_max <= 0:
            return None
        return min(caps.in_list_max, MAX_BATCH)

    def _evaluate(
        self,
        remote: RemoteQueryOp,
        probe_plan: LogicalPlan,
        probe_key: ast.Expr,
        fragment_key: RelColumn,
        batch: int,
    ) -> SemijoinDecision:
        estimator = self._estimator
        probe_rows = max(estimator.estimate_rows(probe_plan), 1.0)
        probe_columns = ast.referenced_columns(probe_key)
        if len(probe_columns) == 1:
            key_ndv = estimator.column_ndv(probe_columns[0], probe_rows)
        else:
            key_ndv = probe_rows
        remote_rows = max(remote.estimated_rows, 1.0)
        remote_key_ndv = estimator.column_ndv(fragment_key, remote_rows)
        match_fraction = min(1.0, key_ndv / max(remote_key_ndv, 1.0))
        reduced_rows = remote_rows * match_fraction

        caps = self._catalog.source(remote.source_name).capabilities()
        width = estimator.estimate_width(remote.columns)
        full = self._cost.transfer_bytes(
            remote.source_name, remote_rows, remote_rows * width, caps.page_rows
        ).total_ms

        key_width = wire_width(fragment_key.dtype)
        batches = max(1, math.ceil(key_ndv / batch))
        link = self._cost.network.link_for(remote.source_name)
        upload = link.transfer_time_ms(key_ndv * key_width, batches)
        download = self._cost.transfer_bytes(
            remote.source_name,
            reduced_rows,
            reduced_rows * width,
            caps.page_rows,
        ).total_ms
        # Each batch is its own request/response, so at least one message each.
        download += link.latency_ms * max(batches - 1, 0)
        reduced = upload + download

        applied = reduced < full or self._mode == "force"
        reason = (
            f"semijoin {'wins' if applied else 'loses'}: reduced "
            f"{reduced:.1f}ms vs full {full:.1f}ms "
            f"(keys≈{key_ndv:.0f}, match≈{match_fraction:.2f})"
        )
        return SemijoinDecision(applied, reason, full, reduced)

"""Cost model for distributed plans.

Costs are virtual milliseconds, the same unit as the simulated network:

* **CPU** — rows processed at the mediator, charged per row;
* **network** — per fragment result: page-count × link latency plus
  payload bytes over link bandwidth.

The decisive property for a 1989-style federation is that wide-area
transfer dwarfs local CPU; the defaults reflect it (one WAN round trip
"buys" ~200k rows of local processing) and the semijoin experiment F1
sweeps bandwidth to move that balance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..sources.network import SimulatedNetwork
from .cardinality import Estimator
from .logical import RelColumn

#: Virtual CPU cost of pushing one row through one mediator operator.
DEFAULT_CPU_ROW_MS = 0.0001


@dataclass(frozen=True)
class Cost:
    """A plan cost split into mediator CPU and network time."""

    cpu_ms: float = 0.0
    network_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.cpu_ms + self.network_ms

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.cpu_ms + other.cpu_ms, self.network_ms + other.network_ms)

    def __lt__(self, other: "Cost") -> bool:
        return self.total_ms < other.total_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cost(cpu={self.cpu_ms:.3f}ms, net={self.network_ms:.3f}ms)"


ZERO_COST = Cost()


class CostModel:
    """Prices mediator work and mediator↔source transfers."""

    def __init__(
        self,
        network: SimulatedNetwork,
        estimator: Estimator,
        cpu_row_ms: float = DEFAULT_CPU_ROW_MS,
    ) -> None:
        self.network = network
        self.estimator = estimator
        self.cpu_row_ms = cpu_row_ms

    def cpu(self, rows: float, factor: float = 1.0) -> Cost:
        """CPU cost of processing ``rows`` rows (``factor`` scales per-row work)."""
        return Cost(cpu_ms=max(rows, 0.0) * self.cpu_row_ms * factor)

    def transfer(
        self,
        source_name: str,
        rows: float,
        columns: Sequence[RelColumn],
        page_rows: int,
    ) -> Cost:
        """Network cost of shipping ``rows`` of ``columns`` from a source."""
        width = self.estimator.estimate_width(columns)
        return self.transfer_bytes(source_name, rows, rows * width, page_rows)

    def transfer_bytes(
        self,
        source_name: str,
        rows: float,
        payload_bytes: float,
        page_rows: int,
    ) -> Cost:
        """Network cost of a transfer with an explicit payload size."""
        link = self.network.link_for(source_name)
        messages = max(1, math.ceil(max(rows, 1.0) / max(page_rows, 1)))
        return Cost(
            network_ms=link.transfer_time_ms(max(payload_bytes, 0.0), messages)
        )

    def hash_join(self, build_rows: float, probe_rows: float, output_rows: float) -> Cost:
        """CPU cost of a mediator-side hash join."""
        return self.cpu(build_rows, 1.5) + self.cpu(probe_rows) + self.cpu(output_rows, 0.5)

    def sort(self, rows: float) -> Cost:
        """CPU cost of a mediator-side sort (n log n)."""
        if rows <= 1:
            return self.cpu(rows)
        return self.cpu(rows, math.log2(rows))

    def aggregate(self, rows: float, groups: float) -> Cost:
        """CPU cost of hash aggregation."""
        return self.cpu(rows, 1.2) + self.cpu(groups, 0.5)

"""Capability-driven source pushdown.

Walks the optimized logical plan bottom-up, computing for every subtree the
single source (if any) that could execute it **entirely within its declared
capability envelope**. Each maximal source-executable subtree is then cut
out and replaced by a :class:`~repro.core.logical.RemoteQueryOp` carrying
the subtree as its fragment; whatever remains above the cut is the
mediator's *compensation* plan.

The remote operator re-exposes the fragment's own output columns (identity
is preserved), so nothing upstream needs rewriting — the exchange simply
materializes the columns the plan already references.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..catalog.catalog import Catalog
from ..sql import ast
from .cardinality import Estimator
from .logical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    LogicalPlan,
    ProjectOp,
    RemoteQueryOp,
    ScanOp,
    SortOp,
    UnionOp,
)

#: Pushdown levels: "full" uses the whole capability envelope; "scans-only"
#: ships every base table in full (the no-pushdown baseline of experiment T1).
PUSHDOWN_LEVELS = ("full", "scans-only")


class PushdownPlanner:
    """Inserts RemoteQueryOp boundaries into a logical plan."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: Estimator,
        level: str = "full",
    ) -> None:
        if level not in PUSHDOWN_LEVELS:
            raise ValueError(f"unknown pushdown level {level!r}")
        self._catalog = catalog
        self._estimator = estimator
        self._level = level
        self._location_cache: Dict[int, Optional[str]] = {}

    # -- public ---------------------------------------------------------------

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        """Replace maximal source-local subtrees with remote fragments."""
        self._location_cache.clear()
        return self._apply(plan)

    def _apply(self, plan: LogicalPlan) -> LogicalPlan:
        location = self._locate(plan)
        if location is not None:
            return self._wrap(plan, location)
        children = plan.children()
        new_children = [self._apply(child) for child in children]
        if all(new is old for new, old in zip(new_children, children)):
            return plan
        return plan.with_children(new_children)

    def _wrap(self, plan: LogicalPlan, source_name: str) -> RemoteQueryOp:
        estimated = self._estimator.estimate_rows(plan)
        return RemoteQueryOp(
            source_name=source_name,
            fragment=plan,
            columns=list(plan.output_columns),
            estimated_rows=estimated,
        )

    # -- location inference -----------------------------------------------------

    def _locate(self, plan: LogicalPlan) -> Optional[str]:
        """The source able to run this whole subtree, or None."""
        key = id(plan)
        if key in self._location_cache:
            return self._location_cache[key]
        location = self._locate_uncached(plan)
        self._location_cache[key] = location
        return location

    def _locate_uncached(self, plan: LogicalPlan) -> Optional[str]:
        if isinstance(plan, ScanOp):
            return plan.source_name.lower()
        if self._level == "scans-only":
            return None
        if isinstance(plan, FilterOp):
            return self._locate_filter(plan)
        if isinstance(plan, ProjectOp):
            source = self._locate(plan.child)
            if source is None:
                return None
            caps = self._capabilities(source)
            if not caps.projection:
                return None
            if all(
                _expression_supported(expression, caps)
                for expression in plan.expressions
            ):
                return source
            return None
        if isinstance(plan, JoinOp):
            if plan.kind not in ("INNER", "LEFT", "CROSS"):
                return None  # SEMI/ANTI stay at the mediator
            left = self._locate(plan.left)
            right = self._locate(plan.right)
            if left is None or left != right:
                return None
            caps = self._capabilities(left)
            if not caps.joins:
                return None
            if plan.condition is not None and not _expression_supported(
                plan.condition, caps
            ):
                return None
            return left
        if isinstance(plan, AggregateOp):
            source = self._locate(plan.child)
            if source is None:
                return None
            caps = self._capabilities(source)
            if not caps.aggregation:
                return None
            for expression in plan.group_expressions:
                if not _expression_supported(expression, caps):
                    return None
            for call in plan.aggregates:
                if call.argument is not None and not _expression_supported(
                    call.argument, caps
                ):
                    return None
            return source
        if isinstance(plan, SortOp):
            source = self._locate(plan.child)
            if source is None:
                return None
            caps = self._capabilities(source)
            if not caps.sort:
                return None
            if all(_expression_supported(e, caps) for e, _ in plan.keys):
                return source
            return None
        if isinstance(plan, LimitOp):
            source = self._locate(plan.child)
            if source is None:
                return None
            return source if self._capabilities(source).limit else None
        if isinstance(plan, DistinctOp):
            source = self._locate(plan.child)
            if source is None:
                return None
            return source if self._capabilities(source).aggregation else None
        if isinstance(plan, UnionOp):
            locations = {self._locate(child) for child in plan.inputs}
            if len(locations) != 1:
                return None
            (source,) = locations
            if source is None:
                return None
            # UNION pushdown needs a SQL-shaped source; join capability is
            # the envelope's proxy for "speaks multi-relation SQL".
            return source if self._capabilities(source).joins else None
        # ValuesOp, SetDifferenceOp, RemoteQueryOp: mediator-side.
        return None

    def _locate_filter(self, plan: FilterOp) -> Optional[str]:
        source = self._locate(plan.child)
        if source is None:
            return None
        caps = self._capabilities(source)
        if not caps.filters:
            return None
        if caps.key_equality_only is not None:
            return self._locate_key_filter(plan, source, caps)
        if _expression_supported(plan.predicate, caps):
            return source
        return None

    def _locate_key_filter(self, plan: FilterOp, source: str, caps) -> Optional[str]:
        """Key-lookup sources accept only ``key = lit`` / ``key IN (lits)``
        conjuncts over a direct table scan."""
        if not isinstance(plan.child, ScanOp):
            return None
        scan = plan.child
        mapping = scan.effective_mapping
        if mapping is None:
            return None
        key_column = (caps.key_equality_only or {}).get(mapping.remote_table)
        if key_column is None:
            for table_name, column in (caps.key_equality_only or {}).items():
                if table_name.lower() == mapping.remote_table.lower():
                    key_column = column
                    break
        if key_column is None:
            return None
        for conjunct in ast.conjuncts(plan.predicate):
            if not _is_key_conjunct(conjunct, key_column, mapping, caps.in_list_max):
                return None
        return source

    def _capabilities(self, source_name: str):
        return self._catalog.source(source_name).capabilities()


# ---------------------------------------------------------------------------
# expression capability checks
# ---------------------------------------------------------------------------


def _expression_supported(expr: ast.Expr, caps) -> bool:
    """Can a source with envelope ``caps`` evaluate ``expr`` natively?"""
    if isinstance(expr, (ast.Literal, ast.BoundRef)):
        return True
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        if op in ast.ARITHMETIC_OPS or op == "||":
            if not caps.arithmetic:
                return False
        elif op in ("AND", "OR", "NOT"):
            if op not in caps.predicate_ops:
                return False
        elif op == "LIKE":
            if "LIKE" not in caps.predicate_ops:
                return False
        elif op not in caps.predicate_ops:
            return False
        return _expression_supported(expr.left, caps) and _expression_supported(
            expr.right, caps
        )
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT" and "NOT" not in caps.predicate_ops:
            return False
        if expr.op == "-" and not caps.arithmetic:
            return False
        return _expression_supported(expr.operand, caps)
    if isinstance(expr, ast.FunctionCall):
        if expr.name.upper() not in caps.functions:
            return False
        return all(_expression_supported(a, caps) for a in expr.args)
    if isinstance(expr, (ast.Case, ast.Cast)):
        # CASE/CAST ride on the "rich expressions" flag.
        if not caps.arithmetic:
            return False
        return all(
            _expression_supported(child, caps)
            for child in ast.expression_children(expr)
        )
    if isinstance(expr, ast.InList):
        if "IN" not in caps.predicate_ops:
            return False
        if caps.in_list_max and len(expr.items) > caps.in_list_max:
            return False
        return all(
            _expression_supported(child, caps)
            for child in ast.expression_children(expr)
        )
    if isinstance(expr, ast.IsNull):
        if "ISNULL" not in caps.predicate_ops:
            return False
        return _expression_supported(expr.operand, caps)
    if isinstance(expr, ast.Between):
        if "BETWEEN" not in caps.predicate_ops:
            return False
        return all(
            _expression_supported(child, caps)
            for child in ast.expression_children(expr)
        )
    return False  # subqueries, stars: never pushable


def _is_key_conjunct(conjunct: ast.Expr, key_column: str, mapping, in_list_max: int) -> bool:
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        sides = [conjunct.left, conjunct.right]
        for ref, literal in (sides, sides[::-1]):
            if (
                isinstance(ref, ast.BoundRef)
                and isinstance(literal, ast.Literal)
                and mapping.remote_column(ref.column.name).lower() == key_column.lower()
            ):
                return True
        return False
    if (
        isinstance(conjunct, ast.InList)
        and not conjunct.negated
        and isinstance(conjunct.operand, ast.BoundRef)
        and mapping.remote_column(conjunct.operand.column.name).lower()
        == key_column.lower()
        and all(isinstance(item, ast.Literal) for item in conjunct.items)
    ):
        return not in_list_max or len(conjunct.items) <= in_list_max
    return False

"""Cardinality and selectivity estimation.

Follows the System R lineage: per-conjunct selectivities multiplied under an
independence assumption, equi-join cardinality via distinct-value counts,
and — when ANALYZE has produced them — equi-depth histograms for skew-aware
point/range selectivity (the subject of experiment T4's ablation).

Column statistics are found through :attr:`RelColumn.origin` lineage, which
survives filters, projections, and joins, so estimates deep in a plan still
ground in base-table statistics.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..catalog.catalog import Catalog
from ..catalog.statistics import ColumnStatistics
from ..datatypes import wire_width
from ..sql import ast
from .fragments import equi_join_keys
from .logical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    LogicalPlan,
    ProjectOp,
    RelColumn,
    RemoteQueryOp,
    ScanOp,
    SetDifferenceOp,
    SortOp,
    UnionOp,
    ValuesOp,
    WindowOp,
)

#: Row count assumed for tables never ANALYZEd and lacking source metadata.
DEFAULT_TABLE_ROWS = 1000.0
#: Selectivity for predicates the estimator cannot decompose.
DEFAULT_SELECTIVITY = 0.25
#: Selectivity for range comparisons without statistics (System R's 1/3).
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
#: Selectivity for equality without statistics.
DEFAULT_EQ_SELECTIVITY = 0.01
#: Selectivity for LIKE patterns.
DEFAULT_LIKE_SELECTIVITY = 0.1


class Estimator:
    """Statistics-driven cardinality estimation over logical plans."""

    def __init__(self, catalog: Catalog, use_histograms: bool = True) -> None:
        self._catalog = catalog
        self.use_histograms = use_histograms

    # -- public API ---------------------------------------------------------

    def estimate_rows(self, plan: LogicalPlan) -> float:
        """Estimated output row count (>= 0; never NaN)."""
        rows = self._rows(plan)
        return max(rows, 0.0)

    def estimate_width(self, columns: Sequence[RelColumn]) -> float:
        """Estimated bytes per row on the wire for these columns."""
        total = 0.0
        for column in columns:
            stats = self._column_stats(column)
            if stats is not None:
                total += stats.avg_width
            else:
                total += wire_width(column.dtype)
        return max(total, 1.0)

    def selectivity(self, predicate: ast.Expr, input_rows: float) -> float:
        """Estimated fraction of rows satisfying ``predicate`` (in [0, 1])."""
        return _clamp(self._selectivity(predicate, input_rows))

    def column_ndv(self, column: RelColumn, rows: float) -> float:
        """Distinct-count estimate for a column within ``rows`` input rows."""
        stats = self._column_stats(column)
        if stats is not None:
            return max(min(stats.distinct_count, rows), 1.0)
        return max(min(rows / 10.0, rows), 1.0)

    # -- row counts ---------------------------------------------------------

    def _rows(self, plan: LogicalPlan) -> float:
        if isinstance(plan, ScanOp):
            return self._scan_rows(plan)
        if isinstance(plan, ValuesOp):
            return float(len(plan.rows))
        if isinstance(plan, RemoteQueryOp):
            return plan.estimated_rows or self._rows(plan.fragment)
        if isinstance(plan, FilterOp):
            child = self._rows(plan.child)
            return child * self.selectivity(plan.predicate, child)
        if isinstance(plan, ProjectOp):
            return self._rows(plan.child)
        if isinstance(plan, JoinOp):
            return self._join_rows(plan)
        if isinstance(plan, AggregateOp):
            return self._aggregate_rows(plan)
        if isinstance(plan, SortOp):
            return self._rows(plan.child)
        if isinstance(plan, WindowOp):
            return self._rows(plan.child)
        if isinstance(plan, LimitOp):
            child = self._rows(plan.child)
            available = max(child - plan.offset, 0.0)
            if plan.limit is None:
                return available
            return min(available, float(plan.limit))
        if isinstance(plan, DistinctOp):
            child = self._rows(plan.child)
            ndv = self._group_ndv(
                [c.ref() for c in plan.child.output_columns], child
            )
            return min(child, ndv)
        if isinstance(plan, UnionOp):
            total = sum(self._rows(child) for child in plan.inputs)
            return total
        if isinstance(plan, SetDifferenceOp):
            left = self._rows(plan.left)
            right = self._rows(plan.right)
            if plan.operation == "INTERSECT":
                return min(left, right) * 0.5
            return max(left - right * 0.5, left * 0.1)
        return DEFAULT_TABLE_ROWS

    def _scan_rows(self, scan: ScanOp) -> float:
        stats = self._catalog.statistics(scan.table.name)
        if stats is not None:
            return max(stats.row_count, 0.0)
        # Fall back on source metadata if the wrapper exposes it cheaply.
        mapping = scan.effective_mapping
        if mapping is not None and self._catalog.has_source(mapping.source):
            adapter = self._catalog.source(mapping.source)
            try:
                count = adapter.row_count(mapping.remote_table)
            except Exception:
                count = None
            if count is not None:
                return float(count)
        return DEFAULT_TABLE_ROWS

    def _join_rows(self, plan: JoinOp) -> float:
        left_rows = self._rows(plan.left)
        right_rows = self._rows(plan.right)
        if plan.kind == "CROSS" or plan.condition is None:
            if plan.kind == "SEMI":
                return left_rows if right_rows > 0 else 0.0
            if plan.kind == "ANTI":
                return 0.0 if right_rows > 0 else left_rows
            return left_rows * right_rows
        keys = equi_join_keys(
            plan.condition, plan.left.output_columns, plan.right.output_columns
        )
        if keys is None:
            selectivity = self.selectivity(plan.condition, left_rows * right_rows)
            inner = left_rows * right_rows * max(selectivity, 1e-9)
        else:
            left_keys, right_keys, residual = keys
            denominator = 1.0
            for left_key, right_key in zip(left_keys, right_keys):
                left_ndv = self._expr_ndv(left_key, left_rows)
                right_ndv = self._expr_ndv(right_key, right_rows)
                denominator *= max(left_ndv, right_ndv, 1.0)
            inner = left_rows * right_rows / denominator
            for conjunct in residual:
                inner *= self.selectivity(conjunct, inner)
        if plan.kind == "INNER":
            return inner
        if plan.kind == "LEFT":
            return max(inner, left_rows)
        if plan.kind == "SEMI":
            return min(left_rows, inner)
        if plan.kind == "ANTI":
            return max(left_rows - inner, left_rows * 0.1)
        return inner

    def _aggregate_rows(self, plan: AggregateOp) -> float:
        if not plan.group_expressions:
            return 1.0
        child = self._rows(plan.child)
        return min(child, self._group_ndv(plan.group_expressions, child))

    def _group_ndv(self, expressions: Sequence[ast.Expr], rows: float) -> float:
        if rows <= 0:
            return 0.0
        product = 1.0
        for expr in expressions:
            product *= self._expr_ndv(expr, rows)
            if product >= rows:
                return rows
        return max(product, 1.0)

    def _expr_ndv(self, expr: ast.Expr, rows: float) -> float:
        if isinstance(expr, ast.BoundRef):
            return self.column_ndv(expr.column, rows)
        if isinstance(expr, ast.Literal):
            return 1.0
        columns = ast.referenced_columns(expr)
        if not columns:
            return 1.0
        product = 1.0
        for column in columns:
            product *= self.column_ndv(column, rows)
        return max(min(product, rows), 1.0)

    # -- selectivity ---------------------------------------------------------

    def _selectivity(self, predicate: ast.Expr, rows: float) -> float:
        if isinstance(predicate, ast.Literal):
            if predicate.value is True:
                return 1.0
            return 0.0  # FALSE and NULL both reject
        if isinstance(predicate, ast.BinaryOp):
            return self._binary_selectivity(predicate, rows)
        if isinstance(predicate, ast.UnaryOp) and predicate.op == "NOT":
            return 1.0 - self._selectivity(predicate.operand, rows)
        if isinstance(predicate, ast.IsNull):
            fraction = self._null_fraction(predicate.operand)
            return (1.0 - fraction) if predicate.negated else fraction
        if isinstance(predicate, ast.Between):
            return self._between_selectivity(predicate)
        if isinstance(predicate, ast.InList):
            return self._in_list_selectivity(predicate, rows)
        return DEFAULT_SELECTIVITY

    def _binary_selectivity(self, predicate: ast.BinaryOp, rows: float) -> float:
        op = predicate.op
        if op == "AND":
            return self._selectivity(predicate.left, rows) * self._selectivity(
                predicate.right, rows
            )
        if op == "OR":
            left = self._selectivity(predicate.left, rows)
            right = self._selectivity(predicate.right, rows)
            return left + right - left * right
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._comparison_selectivity(predicate, rows)
        if op == "LIKE":
            return DEFAULT_LIKE_SELECTIVITY
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, predicate: ast.BinaryOp, rows: float) -> float:
        column, literal, op = _column_vs_literal(predicate)
        if column is None:
            if op == "=":
                # column = column (e.g. a residual join predicate)
                columns = ast.referenced_columns(predicate)
                if len(columns) == 2:
                    ndv = max(
                        self.column_ndv(columns[0], rows),
                        self.column_ndv(columns[1], rows),
                    )
                    return 1.0 / ndv
                return DEFAULT_EQ_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        stats = self._column_stats(column)
        if op == "=":
            if stats is not None:
                if self.use_histograms and stats.histogram is not None:
                    return (1.0 - stats.null_fraction) * stats.histogram.selectivity_eq(
                        literal
                    )
                return (1.0 - stats.null_fraction) / max(stats.distinct_count, 1.0)
            return DEFAULT_EQ_SELECTIVITY
        if op == "<>":
            return 1.0 - self._comparison_selectivity(
                ast.BinaryOp("=", predicate.left, predicate.right), rows
            )
        # Range operators.
        if stats is not None:
            non_null = 1.0 - stats.null_fraction
            if self.use_histograms and stats.histogram is not None:
                histogram = stats.histogram
                try:
                    if op == "<":
                        return non_null * histogram.selectivity_lt(literal)
                    if op == "<=":
                        return non_null * histogram.selectivity_le(literal)
                    if op == ">":
                        return non_null * (1.0 - histogram.selectivity_le(literal))
                    if op == ">=":
                        return non_null * (1.0 - histogram.selectivity_lt(literal))
                except TypeError:
                    return DEFAULT_RANGE_SELECTIVITY
            interpolated = _interpolate(stats, literal, op)
            if interpolated is not None:
                return non_null * interpolated
        return DEFAULT_RANGE_SELECTIVITY

    def _between_selectivity(self, predicate: ast.Between) -> float:
        base: float
        if (
            isinstance(predicate.operand, ast.BoundRef)
            and isinstance(predicate.low, ast.Literal)
            and isinstance(predicate.high, ast.Literal)
        ):
            stats = self._column_stats(predicate.operand.column)
            if stats is not None and self.use_histograms and stats.histogram is not None:
                try:
                    base = (1.0 - stats.null_fraction) * stats.histogram.selectivity_range(
                        predicate.low.value, predicate.high.value
                    )
                except TypeError:
                    base = DEFAULT_RANGE_SELECTIVITY**2
            else:
                base = DEFAULT_RANGE_SELECTIVITY**2
        else:
            base = DEFAULT_RANGE_SELECTIVITY**2
        return 1.0 - base if predicate.negated else base

    def _in_list_selectivity(self, predicate: ast.InList, rows: float) -> float:
        base = 0.0
        for item in predicate.items:
            base += self._selectivity(
                ast.BinaryOp("=", predicate.operand, item), rows
            )
        base = _clamp(base)
        return 1.0 - base if predicate.negated else base

    def _null_fraction(self, expr: ast.Expr) -> float:
        if isinstance(expr, ast.BoundRef):
            stats = self._column_stats(expr.column)
            if stats is not None:
                return _clamp(stats.null_fraction)
        return 0.05

    # -- stats lookup ---------------------------------------------------------

    def _column_stats(self, column: RelColumn) -> Optional[ColumnStatistics]:
        if column.origin is None:
            return None
        table_key, column_name = column.origin
        table_stats = self._catalog.statistics(table_key)
        if table_stats is None:
            return None
        return table_stats.column(column_name)


def _column_vs_literal(predicate: ast.BinaryOp):
    """Decompose ``col OP literal`` (either orientation; op is normalized)."""
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    if isinstance(predicate.left, ast.BoundRef) and isinstance(
        predicate.right, ast.Literal
    ):
        return predicate.left.column, predicate.right.value, predicate.op
    if isinstance(predicate.right, ast.BoundRef) and isinstance(
        predicate.left, ast.Literal
    ):
        return predicate.right.column, predicate.left.value, flip[predicate.op]
    return None, None, predicate.op


def _interpolate(stats: ColumnStatistics, literal: Any, op: str) -> Optional[float]:
    """Min/max linear interpolation when no histogram exists (numerics only)."""
    low, high = stats.min_value, stats.max_value
    if not isinstance(low, (int, float)) or not isinstance(high, (int, float)):
        return None
    if not isinstance(literal, (int, float)):
        return None
    if high <= low:
        return 0.5
    fraction = _clamp((literal - low) / (high - low))
    if op in ("<", "<="):
        return fraction
    return 1.0 - fraction


def _clamp(value: float) -> float:
    if value != value:  # NaN
        return DEFAULT_SELECTIVITY
    return min(max(value, 0.0), 1.0)

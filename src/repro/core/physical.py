"""Physical plan: batch-at-a-time operators with exchange at source boundaries.

The physical planner maps each logical node onto an operator implementation:

* ``RemoteQueryOp`` → :class:`ExchangeExec` (fragment execution at the
  source + paged transfer accounting on the simulated network), or — when a
  bind spec is attached — a :class:`BindJoinExec` at the consuming join;
* equi-joins → :class:`HashJoinExec` (right side builds), everything else →
  :class:`NestedLoopJoinExec`;
* aggregation → :class:`HashAggregateExec`; sorts are full in-memory sorts.

Operators pull **columnar pages** (:class:`~repro.core.pages.Page`: one
Python list per column plus a row count, up to
``ExecutionContext.batch_size`` rows each) through Python generators:
``iterate_batches`` is the native protocol every built-in operator
implements, and the classic row-at-a-time ``iterate`` survives as a thin
compatibility shim that flattens pages into row tuples (so direct callers
and third-party operators keep working — a subclass overriding only
``iterate`` is chunked transparently back into pages). Filters and
projections run vectorized kernels straight over the column vectors;
joins and aggregation vectorize their key/argument expressions and touch
rows only where the algorithm is inherently row-wise. ``batch_size=1``
degenerates to the old row-pull engine.

Network accounting is independent of the batch size: exchanges charge the
simulated network once per **adapter page** (``capabilities().page_rows``)
in every mode, and charged pages are only ever *split* — never coalesced —
into dataflow batches, so a query's transfer metrics are bit-identical
across batch sizes. All charging flows through the
:class:`ExecutionContext` so those metrics are exact and deterministic.
"""

from __future__ import annotations

import datetime
import random
import threading
import time
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..catalog.catalog import Catalog
from ..datatypes import DataType
from ..errors import ExecutionError, PlanError, QueryTimeoutError, SourceError
from ..obs.trace import NULL_SPAN, NULL_TRACER
from ..sql import ast
from ..sources.network import SimulatedNetwork
from .aggregates import make_accumulator, sort_rows
from .expressions import (
    build_layout,
    compile_batch_expression,
    compile_batch_predicate,
    compile_expression,
    compile_predicate,
)
from .fragments import Fragment, equi_join_keys
from .pages import (
    Page,
    as_page,
    chunk_rows,
    pages_from_rows,
    split_batches,
)
from .logical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    LogicalPlan,
    ProjectOp,
    RelColumn,
    RemoteQueryOp,
    ScanOp,
    SetDifferenceOp,
    SortOp,
    UnionOp,
    ValuesOp,
    WindowOp,
)

Row = Tuple[Any, ...]

#: The unit of dataflow between operators: a columnar page.
Batch = Page

#: Default rows per dataflow batch (mirrors sources.base.DEFAULT_PAGE_ROWS).
DEFAULT_BATCH_ROWS = 1024


@dataclass
class ExecutionMetrics:
    """Per-query execution accounting (exposed on every QueryResult)."""

    rows_shipped: int = 0
    bytes_shipped: float = 0.0
    messages: int = 0
    network_ms: float = 0.0
    fragments_executed: int = 0
    fragment_retries: int = 0
    semijoin_batches: int = 0
    rows_output: int = 0
    cache_hit: bool = False
    plan_cache_hit: bool = False
    per_source_rows: Dict[str, int] = field(default_factory=dict)
    # -- batch execution statistics --
    batches_output: int = 0
    batch_rows_avg: float = 0.0
    # -- fragment scheduler statistics (see repro.core.scheduler) --
    scheduler_mode: str = "sequential"
    fragments_in_flight_peak: int = 0
    scheduler_stalls: int = 0
    breaker_trips: int = 0
    breaker_fallbacks: int = 0
    parallel_ms: float = 0.0
    # -- semantic cache statistics (see repro.cache) --
    fragment_cache_hits: int = 0
    fragment_cache_misses: int = 0
    fragment_cache_bytes_saved: float = 0.0
    materialized_view_hits: int = 0
    # -- tail tolerance (see repro.core.health / docs/resilience.md) --
    # Hedge traffic is included in the rows/bytes/messages totals above
    # (it really crossed the wire) and *additionally* broken out here so
    # the duplicate cost of hedging is always visible.
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    hedges_rows_shipped: int = 0
    hedges_bytes_shipped: float = 0.0
    health_reroutes: int = 0


class ExecutionContext:
    """Runtime services shared by all operators of one query.

    ``fragment_retries`` is how many times an exchange may re-issue a
    fragment after a :class:`~repro.errors.SourceError`, provided no rows
    have reached the mediator yet (re-running a half-consumed fragment
    would duplicate rows).

    ``scheduler_config`` / ``breakers`` arm the parallel fragment scheduler
    and the per-source circuit breakers (see :mod:`repro.core.scheduler`);
    both default to off, which is the byte-identical sequential engine.
    Metrics accumulation is lock-protected because scheduler worker threads
    charge transfers concurrently.

    ``batch_size`` is the dataflow granularity: how many rows operators
    hand each other per ``iterate_batches`` step. It never affects network
    accounting (exchanges charge per adapter page regardless); ``1``
    degenerates to row-at-a-time execution.

    Resilience knobs (all default-off, keeping the fault-free engine
    byte-identical): ``deadline`` is the query's wall-clock budget
    (:class:`~repro.core.scheduler.Deadline`), checked cooperatively via
    :meth:`check_deadline`; ``fault_injector`` scripts per-source failures
    into every adapter page fetch (:meth:`execute_pages`);
    ``on_source_failure`` selects whether a source that fails past its
    retry/breaker/replica envelope aborts the query (``"fail"``) or is
    excluded with the query continuing (``"partial"`` — recorded in
    ``excluded_sources``).
    """

    def __init__(
        self,
        catalog: Catalog,
        network: SimulatedNetwork,
        fragment_retries: int = 0,
        scheduler_config=None,
        breakers=None,
        batch_size: int = DEFAULT_BATCH_ROWS,
        deadline=None,
        fault_injector=None,
        on_source_failure: str = "fail",
        typed_columns: bool = True,
        morsel_pool=None,
        fragment_cache=None,
        health=None,
    ) -> None:
        self.catalog = catalog
        self.network = network
        self.fragment_retries = max(fragment_retries, 0)
        self.scheduler_config = scheduler_config
        self.breakers = breakers
        #: The mediator's SourceHealthRegistry (repro.core.health), or
        #: None. Producers feed it page-fetch latencies and outcomes;
        #: adaptive timeouts, hedge delays, and health routing read it.
        self.health = health
        self.scheduler = None  # set by the mediator when config.scheduled
        self.batch_size = max(batch_size, 1)
        #: The mediator's semantic fragment cache (repro.cache), or None.
        #: Exchanges probe it before fetching and fill it on miss.
        self.fragment_cache = fragment_cache
        #: Per-source epochs frozen at context construction — strictly
        #: before any fetch begins, so cache admission can detect a
        #: source that moved mid-query and drop the collected pages.
        self.epoch_snapshot: Dict[str, int] = (
            fragment_cache.epochs.snapshot()
            if fragment_cache is not None
            else {}
        )
        self.deadline = deadline
        self.fault_injector = fault_injector
        self.on_source_failure = on_source_failure
        #: Serve typed (array-backed) column vectors from exchanges; off
        #: downgrades every page to plain object vectors at the exchange
        #: boundary (an honest A/B — results and accounting identical).
        self.typed_columns = typed_columns
        #: Shared intra-operator worker pool (repro.core.morsels), or None.
        #: Armed by the mediator when PlannerOptions.morsel_workers > 1;
        #: joins and aggregations split work into page morsels through it.
        self.morsel_pool = morsel_pool
        #: ``source -> reason`` for sources excluded under "partial".
        self.excluded_sources: Dict[str, str] = {}
        self.metrics = ExecutionMetrics()
        self._metrics_lock = threading.Lock()
        # Tracing hooks (see repro.obs): the mediator arms these per query.
        # Operators and the scheduler call them unconditionally — the NULL
        # singletons make the disabled path a single falsy check.
        self.tracer = NULL_TRACER
        self.trace_span = NULL_SPAN

    def trace_child(self, name: str, category: str = "", **attributes):
        """A span under this query's execute span (NULL when tracing is off)."""
        return self.tracer.child(self.trace_span, name, category, **attributes)

    @property
    def retry_policy(self):
        """The effective retry policy (scheduler config, else legacy knob)."""
        from .scheduler import RetryPolicy

        if self.scheduler_config is not None:
            return self.scheduler_config.retry
        return RetryPolicy(retries=self.fragment_retries)

    def breaker_for(self, source_name: str):
        """This source's circuit breaker, or None when breakers are off."""
        if self.breakers is None or self.scheduler_config is None:
            return None
        threshold = self.scheduler_config.breaker_threshold
        if threshold <= 0:
            return None
        return self.breakers.breaker_for(
            source_name, threshold, self.scheduler_config.breaker_reset_ms
        )

    def execute_pages(self, adapter, fragment, page_rows: int):
        """The adapter page path every fetch routes through.

        With a fault injector armed, pages stream through its scripted
        per-source failure logic; otherwise this is exactly
        ``adapter.execute_pages`` — one attribute check of overhead.
        """
        if self.fault_injector is not None:
            return self.fault_injector.execute_pages(adapter, fragment, page_rows)
        return adapter.execute_pages(fragment, page_rows)

    def deadline_error(self, source_name: Optional[str] = None) -> QueryTimeoutError:
        """Build (without raising) the attributed timeout for this query."""
        deadline = self.deadline
        assert deadline is not None
        with self._metrics_lock:
            per_source = dict(self.metrics.per_source_rows)
        return QueryTimeoutError(
            deadline.budget_ms, deadline.elapsed_ms(), source_name, per_source
        )

    def check_deadline(self, source_name: Optional[str] = None) -> None:
        """Cooperative cancellation point (page boundaries, retry gates).

        No-op without a deadline; raises :class:`QueryTimeoutError` with
        per-source attribution once the budget is exhausted.
        """
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            self.trace_span.event(
                "deadline", budget_ms=deadline.budget_ms, source=source_name
            )
            raise self.deadline_error(source_name)

    def record_exclusion(self, source_name: str, reason) -> None:
        """Mark one source's rows as missing from this query's result.

        Called when ``on_source_failure="partial"`` degrades a dead
        source's scan to empty; first reason per source wins (the
        original failure, not any follow-on noise).
        """
        key = source_name.lower()
        with self._metrics_lock:
            self.excluded_sources.setdefault(key, str(reason))
        self.trace_span.event("source-excluded", source=key)

    def add_metric(self, name: str, amount) -> None:
        """Thread-safe increment of a numeric metric field."""
        with self._metrics_lock:
            setattr(self.metrics, name, getattr(self.metrics, name) + amount)

    def set_metric(self, name: str, value) -> None:
        with self._metrics_lock:
            setattr(self.metrics, name, value)

    def charge_transfer(
        self, source_name: str, rows: Any, messages: int, sizer=None
    ) -> float:
        """Account one page (or request) moving between mediator and source.

        ``rows`` is the shipped page — a :class:`Page` or a plain row-tuple
        list from a legacy adapter. ``sizer`` is an optional memoized batch
        sizer (see :func:`make_batch_sizer`) that computes the page's wire
        size in one call from per-column dtype closures over the column
        vectors; without one the page is sized value by value. Both produce
        identical totals.

        Returns the simulated elapsed milliseconds of this transfer so the
        scheduler can attribute it to the fragment's virtual-clock lane.
        """
        if sizer is not None:
            payload = sizer(rows)
        elif isinstance(rows, Page):
            payload = sum(
                _value_bytes(value)
                for column in rows.columns
                for value in column
            )
        else:
            payload = sum(_row_bytes(row) for row in rows)
        elapsed = self.network.record_transfer(
            source_name, payload, len(rows), messages,
            extra_latency_ms=self._fault_latency(source_name),
        )
        with self._metrics_lock:
            metrics = self.metrics
            metrics.rows_shipped += len(rows)
            metrics.bytes_shipped += payload
            metrics.messages += messages
            metrics.network_ms += elapsed
            key = source_name.lower()
            metrics.per_source_rows[key] = (
                metrics.per_source_rows.get(key, 0) + len(rows)
            )
        return elapsed

    def charge_request(self, source_name: str, payload_bytes: float) -> float:
        """Account an upload-only message (semijoin key batches)."""
        elapsed = self.network.record_transfer(
            source_name, payload_bytes, 0, 1,
            extra_latency_ms=self._fault_latency(source_name),
        )
        with self._metrics_lock:
            self.metrics.messages += 1
            self.metrics.bytes_shipped += payload_bytes
            self.metrics.network_ms += elapsed
        return elapsed

    def _fault_latency(self, source_name: str) -> float:
        """The armed plan's scripted latency spike for a source (ms/message)."""
        if self.fault_injector is None:
            return 0.0
        return self.fault_injector.latency_penalty_ms(source_name)


def _row_bytes(row: Row) -> float:
    """Actual wire size of a row (value-dependent for TEXT)."""
    total = 0.0
    for value in row:
        total += _value_bytes(value)
    return total


def _value_bytes(value: Any) -> float:
    """Wire size of one value (the per-value fallback the sizers memoize)."""
    if value is None:
        return 1.0
    if isinstance(value, bool):
        return 1.0
    if isinstance(value, (int, float)):
        return 8.0
    if isinstance(value, str):
        return float(len(value))
    if isinstance(value, datetime.date):
        return 4.0
    return 8.0  # pragma: no cover - no other global types exist


def _text_sizer(values: List[Any]) -> float:
    """Wire size of a TEXT column vector.

    ``sum(map(len, ...))`` runs entirely in C; NULLs take the filtered
    variant (``filter(None, ...)`` also drops empty strings, which weigh
    nothing anyway). A defensive non-string value falls back to the
    per-value path via the TypeError from ``len``.
    """
    nulls = values.count(None)
    try:
        if not nulls:
            return float(sum(map(len, values)))
        return float(sum(map(len, filter(None, values)))) + nulls
    except TypeError:
        return sum(
            float(len(v)) if isinstance(v, str) else _value_bytes(v)
            for v in values
        )


def _column_sizer(dtype):
    """A per-column sizer ``fn(values) -> bytes`` specialized on the dtype.

    ``values`` is always a materialized list (a page column vector or a
    gathered legacy column). Each closure reproduces :func:`_value_bytes`
    exactly for the values a column of that dtype can hold (including
    NULLs and, defensively, booleans inside numeric columns), so memoized
    totals are identical to the value-by-value sum — just without an
    isinstance chain per cell.
    """
    if dtype in (DataType.BOOLEAN, DataType.NULL):
        # bools and NULLs are both 1 byte: a constant per value.
        return lambda values: float(len(values))
    if dtype in (DataType.INTEGER, DataType.FLOAT):
        # 8 bytes per number; count the 1-byte exceptions instead of
        # summing a float per cell. A typed vector is null-free and
        # bool-free by construction, so its size is exactly 8 bytes/cell
        # — the same total the scan would produce.
        def numeric_bytes(values: Any) -> float:
            if type(values) is array:
                return 8.0 * len(values)
            return 8.0 * len(values) - 7.0 * sum(
                1 for v in values if v is None or v is True or v is False
            )

        return numeric_bytes
    if dtype is DataType.DATE:
        return lambda values: 4.0 * len(values) - 3.0 * values.count(None)
    if dtype is DataType.TEXT:
        return _text_sizer
    return lambda values: sum(_value_bytes(v) for v in values)


def make_batch_sizer(columns: Sequence[RelColumn]):
    """Memoized wire sizing for one fragment's output schema.

    Returns ``fn(page) -> bytes``: per-column dtype closures are resolved
    once per fragment (at plan time) and applied straight to the page's
    column vectors — no per-row iteration, no per-value isinstance chain.
    A legacy row-tuple page is sized through a per-column gather instead.
    Totals are identical to :func:`_row_bytes` summed over the rows.
    """
    sizers = [(index, _column_sizer(column.dtype)) for index, column in enumerate(columns)]

    def batch_bytes(batch: Any) -> float:
        total = 0.0
        if isinstance(batch, Page):
            columns = batch.columns
            for index, sizer in sizers:
                total += sizer(columns[index])
            return total
        for index, sizer in sizers:
            total += sizer([row[index] for row in batch])
        return total

    return batch_bytes


# The batching helpers (chunk_rows, split_batches, pages_from_rows) live in
# repro.core.pages and are re-exported here for compatibility.


def _materialize_rows(child: "PhysicalOperator", ctx: "ExecutionContext") -> List[Row]:
    """Drain a child operator to a row list, one deadline check per batch
    (the cancellation point for blocking materializations)."""
    rows: List[Row] = []
    for batch in child.iterate_batches(ctx):
        ctx.check_deadline()
        rows.extend(batch)
    return rows


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------


class PhysicalOperator:
    """Base class: an output schema plus a pull-based page stream.

    ``iterate_batches`` is the native protocol (all built-in operators
    override it and exchange :class:`Page` objects); ``iterate`` is the
    row-at-a-time compatibility shim that flattens pages into row tuples.
    A third-party subclass may still override *only* ``iterate`` — the
    base ``iterate_batches`` detects that and chunks the legacy row
    stream into pages of ``ctx.batch_size``.
    """

    def __init__(self, columns: Sequence[RelColumn]) -> None:
        self.columns = list(columns)

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        if type(self).iterate is not PhysicalOperator.iterate:
            # Legacy operator: only the row stream exists; chunk it.
            yield from chunk_rows(self.iterate(ctx), ctx.batch_size)
            return
        raise NotImplementedError(
            f"{type(self).__name__} implements neither iterate_batches nor iterate"
        )

    def iterate(self, ctx: ExecutionContext) -> Iterator[Row]:
        for batch in self.iterate_batches(ctx):
            yield from batch

    def describe(self) -> str:
        return type(self).__name__.replace("Exec", "")

    def children(self) -> List["PhysicalOperator"]:
        return []

    def explain(
        self,
        indent: int = 0,
        row_counts: Optional[Dict[int, int]] = None,
        batch_counts: Optional[Dict[int, int]] = None,
        timings: Optional[Dict[int, float]] = None,
    ) -> str:
        label = "  " * indent + self.describe()
        if row_counts is not None and id(self) in row_counts:
            label += f"  [{row_counts[id(self)]} rows"
            if batch_counts is not None and batch_counts.get(id(self)):
                label += f" / {batch_counts[id(self)]} batches"
            if timings is not None and id(self) in timings:
                label += f" / {timings[id(self)]:.1f} ms"
            label += "]"
        lines = [label]
        for child in self.children():
            lines.append(
                child.explain(indent + 1, row_counts, batch_counts, timings)
            )
        return "\n".join(lines)

    def walk(self) -> Iterator["PhysicalOperator"]:
        """This operator and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


def instrument_row_counts(
    root: PhysicalOperator,
    batch_counts: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Wrap every operator's batch stream to count produced rows.

    Returns the (initially zeroed) ``id(op) -> rows`` map that fills in
    during execution — the EXPLAIN ANALYZE mechanism. Pass ``batch_counts``
    to additionally collect ``id(op) -> batches`` produced. Exactly one
    layer is wrapped per operator: ``iterate_batches`` when the operator
    implements it natively, else the legacy ``iterate`` (whose batch counts
    stay 0) — so rows are never double-counted through the shim. Wrapping
    mutates the given tree's instances, which are per-plan and never reused.
    """
    counts: Dict[int, int] = {}

    def wrap(op: PhysicalOperator) -> None:
        counts[id(op)] = 0
        if batch_counts is not None:
            batch_counts[id(op)] = 0
        if type(op).iterate_batches is PhysicalOperator.iterate_batches and (
            type(op).iterate is not PhysicalOperator.iterate
        ):
            original_rows = op.iterate

            def counted_rows(ctx: ExecutionContext, _original=original_rows, _key=id(op)):
                for row in _original(ctx):
                    counts[_key] += 1
                    yield row

            op.iterate = counted_rows  # type: ignore[method-assign]
            return
        original = op.iterate_batches

        def counted(ctx: ExecutionContext, _original=original, _key=id(op)):
            for batch in _original(ctx):
                counts[_key] += len(batch)
                if batch_counts is not None:
                    batch_counts[_key] += 1
                yield batch

        op.iterate_batches = counted  # type: ignore[method-assign]

    for operator in root.walk():
        wrap(operator)
    return counts


@dataclass
class OperatorProfile:
    """Execution actuals for one physical operator.

    ``wall_ms`` is *inclusive* time: milliseconds spent inside this
    operator's pull (which contains its children's pulls), summed over
    every batch it produced — the number EXPLAIN ANALYZE reports per node.
    """

    rows: int = 0
    batches: int = 0
    wall_ms: float = 0.0


def profile_operators(
    root: PhysicalOperator, tracer=None, parent=None
) -> Dict[int, "OperatorProfile"]:
    """Wrap every operator's stream to record rows, batches, and time.

    Returns ``id(op) -> OperatorProfile``, filled in during execution —
    the EXPLAIN ANALYZE / per-operator tracing mechanism. When a live
    ``tracer`` and ``parent`` span are given, each operator additionally
    emits one span covering its first pull through exhaustion, annotated
    with its actuals. Like :func:`instrument_row_counts`, exactly one
    layer is wrapped per operator (native ``iterate_batches``, else the
    legacy ``iterate``, whose batch counts stay 0), and wrapping mutates
    the per-plan operator instances.
    """
    tracer = tracer or NULL_TRACER
    parent = parent if parent is not None else NULL_SPAN
    profiles: Dict[int, OperatorProfile] = {}
    clock = time.perf_counter

    def wrap(op: PhysicalOperator) -> None:
        profile = profiles[id(op)] = OperatorProfile()
        label = op.describe()
        legacy = type(op).iterate_batches is PhysicalOperator.iterate_batches and (
            type(op).iterate is not PhysicalOperator.iterate
        )
        original = op.iterate if legacy else op.iterate_batches

        def profiled(ctx: ExecutionContext, _original=original,
                     _profile=profile, _label=label, _legacy=legacy):
            span = tracer.child(parent, f"op:{_label}", "operator")
            iterator = _original(ctx)
            elapsed = 0.0
            try:
                while True:
                    started = clock()
                    try:
                        item = next(iterator)
                    except StopIteration:
                        elapsed += clock() - started
                        return
                    elapsed += clock() - started
                    if _legacy:
                        _profile.rows += 1
                    else:
                        _profile.batches += 1
                        _profile.rows += len(item)
                    yield item
            finally:
                _profile.wall_ms += elapsed * 1000.0
                if span:
                    span.set_attribute("rows", _profile.rows)
                    span.set_attribute("batches", _profile.batches)
                    span.set_attribute("busy_ms", round(_profile.wall_ms, 3))
                    span.end()

        if legacy:
            op.iterate = profiled  # type: ignore[method-assign]
        else:
            op.iterate_batches = profiled  # type: ignore[method-assign]

    for operator in root.walk():
        wrap(operator)
    return profiles


class StaticRowsExec(PhysicalOperator):
    """Literal rows (FROM-less selects, constant-folded empties)."""

    def __init__(self, rows: List[Row], columns: Sequence[RelColumn]) -> None:
        super().__init__(columns)
        self._rows = rows

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        width = len(self.columns)
        yield from pages_from_rows(self._rows, ctx.batch_size, width)

    def describe(self) -> str:
        return f"StaticRows({len(self._rows)})"


class ExchangeExec(PhysicalOperator):
    """Fetch a fragment's result from its source over the simulated network.

    ``mode`` is "sequential" (pull pages inline, the classic path) or
    "parallel" (async-pull: a scheduler worker thread fetches pages into a
    bounded queue that this operator drains — see
    :class:`repro.core.scheduler.FragmentScheduler`).
    """

    def __init__(
        self,
        adapter: Any,
        fragment: Fragment,
        columns: Sequence[RelColumn],
        page_rows: int,
        mode: str = "sequential",
    ) -> None:
        super().__init__(columns)
        self.adapter = adapter
        self.fragment = fragment
        self.page_rows = max(page_rows, 1)
        self.mode = mode
        self._sizer = make_batch_sizer(columns)
        self._dtypes = [column.dtype for column in columns]

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        try:
            yield from self._batches(ctx)
        except SourceError as exc:
            # Graceful degradation: past the whole retry/breaker/replica
            # envelope, a dead source's scan becomes empty and the query
            # carries on — flagged, never silent (the mediator stamps
            # complete=False from ctx.excluded_sources). Deadline expiry
            # (QueryTimeoutError) is never downgraded to a partial result.
            if ctx.on_source_failure != "partial":
                raise
            ctx.record_exclusion(exc.source_name, exc)

    def _batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        decision = None
        cache = ctx.fragment_cache
        if cache is not None:
            # A prestarted exchange already has a worker fetching (and
            # charging the network) — it may fill the cache but must not
            # replay from it.
            prestarted = (
                ctx.scheduler is not None and ctx.scheduler.was_prestarted(self)
            )
            decision = cache.begin(self, ctx, allow_replay=not prestarted)
        if decision is not None and decision.replay is not None:
            pages = decision.replay
        else:
            if ctx.scheduler is not None:
                pages = ctx.scheduler.stream_exchange_pages(self, ctx)
            else:
                pages = self._direct_pages(ctx)
            if decision is not None and decision.fill is not None:
                pages = decision.fill(pages)
        # Normalize to columnar pages (a no-op for native adapters; legacy
        # adapters yielding row lists are transposed here), then split
        # charged pages down to the dataflow batch size — never merged
        # across page boundaries (see split_batches). The exchange is also
        # the typed-column boundary: with typed_columns on, eligible
        # columns are upgraded to array vectors (a no-op for adapters
        # that already serve typed pages); off, every page is downgraded
        # to plain object vectors so the knob is an honest A/B.
        width = len(self.columns)
        if ctx.typed_columns:
            dtypes = self._dtypes
            normalized = (as_page(page, width).retyped(dtypes) for page in pages)
        else:
            normalized = (as_page(page, width).plain() for page in pages)
        source = self.fragment.source_name
        for batch in split_batches(normalized, ctx.batch_size):
            ctx.check_deadline(source)
            yield batch

    def _direct_pages(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """The sequential path, wrapped in the robustness envelope
        (breaker gate + backoff) when those knobs are armed. Yields the
        fragment's charged pages in order."""
        from .scheduler import health_route, replica_fallback, sleep_ms

        ctx.metrics.fragments_executed += 1
        policy = ctx.retry_policy
        adapter, fragment = self.adapter, self.fragment
        source = fragment.source_name
        health = ctx.health
        config = ctx.scheduler_config
        if (
            config is not None
            and config.health_routing
            and ctx.breakers is not None
        ):
            routed = health_route(ctx.catalog, fragment, ctx.breakers, health)
            if routed is not None:
                ctx.trace_span.event(
                    "health-route", primary=source, replica=routed[0],
                )
                source, adapter, fragment = routed
                ctx.add_metric("health_reroutes", 1)
        sizer = self._sizer
        rng = random.Random(f"{source}:direct")
        attempt = 0
        span = ctx.trace_child(
            f"fragment:{source}", "fragment", source=source, mode="sequential"
        )
        try:
            while True:
                ctx.check_deadline(source)
                breaker = ctx.breaker_for(source)
                if breaker is not None and not breaker.allow():
                    fallback = (
                        replica_fallback(ctx.catalog, fragment, ctx.breakers)
                        if ctx.breakers is not None
                        else None
                    )
                    if fallback is None:
                        raise SourceError(
                            source,
                            "circuit breaker open; no healthy replica registered "
                            "(failing fast)",
                        )
                    source, adapter, fragment = fallback
                    ctx.add_metric("breaker_fallbacks", 1)
                    span.event("replica-fallback", source=source)
                    span.set_attribute("source", source)
                    continue  # re-evaluate the replica's own breaker
                produced = False
                try:
                    page_started = time.monotonic()
                    for page in ctx.execute_pages(adapter, fragment, self.page_rows):
                        if health is not None:
                            health.observe_latency(
                                source,
                                (time.monotonic() - page_started) * 1000.0,
                            )
                        # Every page — including the final (possibly empty)
                        # one — costs a round trip; an empty result still
                        # charges one message.
                        ctx.charge_transfer(source, page, 1, sizer)
                        span.event("page", rows=len(page))
                        if page:
                            yield page
                            produced = True
                        # Downstream operators run between pages; do not
                        # charge their time to the source's latency.
                        page_started = time.monotonic()
                except SourceError as exc:
                    if health is not None:
                        health.record_error(source)
                    if breaker is not None and breaker.record_failure():
                        ctx.add_metric("breaker_trips", 1)
                        span.event("breaker-trip", source=source)
                    # Retry is only safe before any row reached the consumer,
                    # only for transient failures, and only when the backoff
                    # delay still fits inside the query's deadline budget.
                    retryable = getattr(exc, "retryable", True)
                    if produced or not retryable or attempt >= policy.retries:
                        span.set_attribute("error", repr(exc))
                        if not retryable:
                            span.set_attribute("permanent", True)
                        raise
                    attempt += 1
                    delay = policy.delay_ms(attempt, rng)
                    deadline = ctx.deadline
                    if deadline is not None and deadline.remaining_ms() <= delay:
                        span.event(
                            "retry-abandoned", attempt=attempt,
                            delay_ms=round(delay, 3),
                            remaining_ms=round(deadline.remaining_ms(), 3),
                        )
                        span.set_attribute("error", repr(exc))
                        raise
                    ctx.metrics.fragment_retries += 1
                    span.event("retry", attempt=attempt, delay_ms=round(delay, 3))
                    sleep_ms(delay)
                    continue
                if breaker is not None:
                    breaker.record_success()
                if health is not None:
                    health.record_success(source)
                return
        finally:
            span.end()

    def describe(self) -> str:
        label = f"Exchange(source={self.fragment.source_name})"
        if self.mode == "parallel":
            label = label[:-1] + ", parallel)"
        return label


class FilterExec(PhysicalOperator):
    """Vectorized selection: mask the page, gather survivors by index."""

    def __init__(
        self,
        child: PhysicalOperator,
        predicate: ast.Expr,
        vectorized: bool = True,
    ) -> None:
        super().__init__(child.columns)
        self.child = child
        self._kernel = compile_batch_predicate(
            predicate, build_layout(child.columns), vectorized
        )

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        kernel = self._kernel
        for batch in self.child.iterate_batches(ctx):
            selected = kernel(batch)
            if selected:
                yield selected


class ProjectExec(PhysicalOperator):
    """Vectorized projection: one kernel per output column, no row building.

    Column-reference kernels return the child page's column vector as-is,
    so pass-through columns are zero copy; vectors are never mutated
    downstream, which makes the sharing safe.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        expressions: Sequence[ast.Expr],
        columns: Sequence[RelColumn],
        vectorized: bool = True,
    ) -> None:
        super().__init__(columns)
        self.child = child
        layout = build_layout(child.columns)
        self._kernels = [
            compile_batch_expression(e, layout, vectorized) for e in expressions
        ]

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        kernels = self._kernels
        for batch in self.child.iterate_batches(ctx):
            # A zero-column projection still carries its row count.
            yield Page([kernel(batch) for kernel in kernels], len(batch))


class FusedPipelineExec(PhysicalOperator):
    """A fused scan pipeline: adjacent Filter/Project steps in one operator.

    The physical planner (``fuse=True``) collapses every maximal chain of
    ``FilterOp``/``ProjectOp`` nodes into one of these. Per input page the
    fused loop runs mask → gather → project without crossing an operator
    boundary: no intermediate generator frames, no per-step page
    re-dispatch, and a page emptied by a filter short-circuits the rest of
    the chain. Consecutive filters are conjoined into a single predicate
    kernel before compilation (the predicates are pure, so evaluating
    them as one ``AND`` is Kleene-equivalent to evaluating them in
    sequence).

    Rows, metrics, and page boundaries are identical to the unfused
    operator chain; only EXPLAIN output differs (one ``Fused(...)`` node
    replaces the chain).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        steps: Sequence[LogicalPlan],
        vectorized: bool = True,
    ) -> None:
        stages: List[Tuple[str, Any]] = []
        labels: List[str] = []
        current_columns = list(child.columns)
        pending_predicates: List[ast.Expr] = []

        def flush_filters() -> None:
            if not pending_predicates:
                return
            predicate = ast.conjoin(list(pending_predicates))
            assert predicate is not None
            stages.append(
                (
                    "filter",
                    compile_batch_predicate(
                        predicate, build_layout(current_columns), vectorized
                    ),
                )
            )
            labels.append("Filter")
            pending_predicates.clear()

        for step in steps:  # innermost-first
            if isinstance(step, FilterOp):
                pending_predicates.append(step.predicate)
                continue
            if not isinstance(step, ProjectOp):  # pragma: no cover
                raise PlanError(
                    f"cannot fuse {type(step).__name__} into a pipeline"
                )
            flush_filters()
            layout = build_layout(current_columns)
            stages.append(
                (
                    "project",
                    [
                        compile_batch_expression(e, layout, vectorized)
                        for e in step.expressions
                    ],
                )
            )
            labels.append("Project")
            current_columns = list(step.columns)
        flush_filters()
        super().__init__(current_columns)
        self.child = child
        self._stages = stages
        self._label = "→".join(labels)

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def describe(self) -> str:
        return f"Fused({self._label})"

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        stages = self._stages
        for batch in self.child.iterate_batches(ctx):
            page: Optional[Batch] = batch
            for kind, payload in stages:
                if kind == "filter":
                    page = payload(page)
                    if not page:
                        page = None
                        break
                else:
                    page = Page(
                        [kernel(page) for kernel in payload], len(page)
                    )
            if page is not None and page.num_rows:
                yield page


class HashJoinExec(PhysicalOperator):
    """Equi-join: builds a hash table on the right input, probes with the left.

    Supports INNER, LEFT, SEMI, ANTI (with NOT IN null-awareness), plus a
    residual predicate evaluated on candidate pairs.

    Both sides extract join keys **column-wise, once per page**: a
    single-key join uses the kernel's output vector directly as the key
    column (scalar dict keys — no per-row tuple allocation at all), a
    multi-key join transposes the key vectors with one C-speed
    ``zip(*columns)``. The probe's table lookups run through
    ``map(table.get, keys)`` — a pure C loop per page (NULL and absent
    keys both map to ``None``; NULL keys are never inserted at build, so
    the two are indistinguishable exactly as equi-join semantics demand).
    INNER/SEMI/ANTI probes without a residual assemble output pages
    columnar-ly (index gather on the left, one transpose for matched
    right rows); LEFT joins and residual predicates keep a per-row
    emission loop over the matched candidates.

    With a morsel pool armed (``ExecutionContext.morsel_pool``), the
    build side is materialized and split into per-page morsels whose
    partial tables merge in page order (per-key row lists concatenate in
    exactly the sequential build order), and probe pages map to output
    pages on the pool with ordered emission — results are bit-identical
    to the single-threaded path.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        kind: str,
        left_keys: Sequence[ast.Expr],
        right_keys: Sequence[ast.Expr],
        residual: Optional[ast.Expr],
        columns: Sequence[RelColumn],
        null_aware: bool = False,
        vectorized: bool = True,
    ) -> None:
        super().__init__(columns)
        self.left = left
        self.right = right
        self.kind = kind
        self.null_aware = null_aware
        left_layout = build_layout(left.columns)
        right_layout = build_layout(right.columns)
        # Join keys are computed as whole columns per page; the build and
        # probe loops then index into the key vectors row by row.
        self._left_key_kernels = [
            compile_batch_expression(k, left_layout, vectorized) for k in left_keys
        ]
        self._right_key_kernels = [
            compile_batch_expression(k, right_layout, vectorized) for k in right_keys
        ]
        combined = build_layout(list(left.columns) + list(right.columns))
        self._residual = (
            compile_predicate(residual, combined) if residual is not None else None
        )

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"HashJoin({self.kind})"

    def _extract_keys(self, kernels, batch: Batch):
        """The page's join-key sequence: the raw key vector for a single
        key, transposed tuples for compound keys."""
        if len(kernels) == 1:
            return kernels[0](batch)
        return list(zip(*[kernel(batch) for kernel in kernels]))

    def _build_partial(
        self, batch: Batch, table: Optional[Dict[Any, List[Row]]] = None
    ) -> Tuple[Dict[Any, List[Row]], bool, int]:
        """Fold one right-side page into a (possibly shared) hash table."""
        if table is None:
            table = {}
        has_null = False
        setdefault = table.setdefault
        if len(self._right_key_kernels) == 1:
            for key, row in zip(
                self._right_key_kernels[0](batch), batch
            ):
                if key is None:
                    has_null = True
                else:
                    setdefault(key, []).append(row)
        else:
            key_columns = [kernel(batch) for kernel in self._right_key_kernels]
            for key, row in zip(zip(*key_columns), batch):
                # Key parts are scalar column values, so `in` (which
                # compares with ==) finds exactly the None parts.
                if None in key:
                    has_null = True
                else:
                    setdefault(key, []).append(row)
        return table, has_null, len(batch)

    def _build_table(
        self, ctx: ExecutionContext
    ) -> Tuple[Dict[Any, List[Row]], bool, int]:
        pool = ctx.morsel_pool
        if pool is not None:
            pages: List[Batch] = []
            for batch in self.right.iterate_batches(ctx):
                ctx.check_deadline()
                pages.append(batch)
            if len(pages) > 1:
                partials = pool.map_all(self._build_partial, pages)
                table: Dict[Any, List[Row]] = {}
                has_null = False
                count = 0
                for partial, partial_null, partial_count in partials:
                    has_null = has_null or partial_null
                    count += partial_count
                    if not table:
                        table = partial
                        continue
                    get = table.get
                    for key, rows in partial.items():
                        existing = get(key)
                        if existing is None:
                            table[key] = rows
                        else:
                            existing.extend(rows)
                return table, has_null, count
            table, has_null, count = {}, False, 0
            for batch in pages:
                _, page_null, page_count = self._build_partial(batch, table)
                has_null = has_null or page_null
                count += page_count
            return table, has_null, count
        table, has_null, count = {}, False, 0
        for batch in self.right.iterate_batches(ctx):
            ctx.check_deadline()
            _, page_null, page_count = self._build_partial(batch, table)
            has_null = has_null or page_null
            count += page_count
        return table, has_null, count

    def _make_prober(self, table: Dict[Any, List[Row]], right_count: int):
        """Compile ``probe(page) -> Page | row list | None`` for this join.

        The returned callable is pure (reads only the finished hash
        table), so the morsel pool may run it on any worker.
        """
        kernels = self._left_key_kernels
        single = len(kernels) == 1
        extract = self._extract_keys
        residual = self._residual
        kind = self.kind
        null_aware = self.null_aware
        null_right = (None,) * len(self.right.columns)
        get = table.get

        if residual is None and kind == "INNER":

            def probe_inner(batch: Batch):
                keys = extract(kernels, batch)
                left_indices: List[int] = []
                matched_rows: List[Row] = []
                add_index = left_indices.append
                add_row = matched_rows.append
                for index, matches in enumerate(map(get, keys)):
                    if matches is not None:
                        for right_row in matches:
                            add_index(index)
                            add_row(right_row)
                if not left_indices:
                    return None
                left_page = batch.take(left_indices)
                right_columns: List[Any] = [
                    list(column) for column in zip(*matched_rows)
                ]
                return Page(
                    left_page.columns + right_columns, len(left_indices)
                )

            return probe_inner

        if residual is None and kind == "SEMI":

            def probe_semi(batch: Batch):
                keys = extract(kernels, batch)
                keep = [
                    index
                    for index, matches in enumerate(map(get, keys))
                    if matches is not None
                ]
                if not keep:
                    return None
                if len(keep) == batch.num_rows:
                    return batch
                return batch.take(keep)

            return probe_semi

        if residual is None and kind == "ANTI":

            def probe_anti(batch: Batch):
                keys = extract(kernels, batch)
                if null_aware and right_count > 0:
                    # NULL NOT IN (non-empty set) is never TRUE: null-key
                    # rows are dropped along with the matched ones.
                    if single:
                        keep = [
                            index
                            for index, key in enumerate(keys)
                            if key is not None and get(key) is None
                        ]
                    else:
                        keep = [
                            index
                            for index, key in enumerate(keys)
                            if None not in key and get(key) is None
                        ]
                else:
                    keep = [
                        index
                        for index, matches in enumerate(map(get, keys))
                        if matches is None
                    ]
                if not keep:
                    return None
                if len(keep) == batch.num_rows:
                    return batch
                return batch.take(keep)

            return probe_anti

        def probe_general(batch: Batch):
            keys = extract(kernels, batch)
            out: List[Row] = []
            append = out.append
            for left_row, key, matches in zip(batch, keys, map(get, keys)):
                if matches is None:
                    matches = ()
                elif residual is not None:
                    matches = [
                        right_row
                        for right_row in matches
                        if residual(left_row + right_row)
                    ]
                if kind == "INNER":
                    for right_row in matches:
                        append(left_row + right_row)
                elif kind == "LEFT":
                    if matches:
                        for right_row in matches:
                            append(left_row + right_row)
                    else:
                        append(left_row + null_right)
                elif kind == "SEMI":
                    if matches:
                        append(left_row)
                elif kind == "ANTI":
                    if matches:
                        continue
                    if null_aware and right_count > 0:
                        if single:
                            if key is None:
                                continue
                        elif None in key:
                            continue  # NULL NOT IN (non-empty) never TRUE
                    append(left_row)
                else:  # pragma: no cover - planner guards
                    raise ExecutionError(
                        f"hash join cannot handle kind {kind!r}"
                    )
            return out

        return probe_general

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        table, right_has_null_key, right_count = self._build_table(ctx)
        if self.kind == "ANTI" and self.null_aware and right_has_null_key:
            return  # NOT IN with a NULL on the right: empty result
        probe = self._make_prober(table, right_count)
        size = ctx.batch_size
        width = len(self.columns)

        def checked_batches() -> Iterator[Batch]:
            for batch in self.left.iterate_batches(ctx):
                ctx.check_deadline()
                yield batch

        pool = ctx.morsel_pool
        if pool is not None:
            results: Iterator[Any] = pool.ordered_map(probe, checked_batches())
        else:
            results = map(probe, checked_batches())
        for out in results:
            if out is None:
                continue
            if isinstance(out, Page):
                if out.num_rows:
                    yield from split_batches([out], size)
            elif out:
                yield from pages_from_rows(out, size, width)


class MergeJoinExec(PhysicalOperator):
    """Sort-merge equi-join (INNER only).

    Materializes and sorts both inputs on the join keys, then merges,
    expanding duplicate key groups pairwise. Rows with NULL keys never
    match and are dropped up front. Exists as the classic alternative to
    hash join; selected via ``PlannerOptions(join_algorithm="merge")``.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[ast.Expr],
        right_keys: Sequence[ast.Expr],
        residual: Optional[ast.Expr],
        columns: Sequence[RelColumn],
    ) -> None:
        super().__init__(columns)
        self.left = left
        self.right = right
        left_layout = build_layout(left.columns)
        right_layout = build_layout(right.columns)
        self._left_key_fns = [compile_expression(k, left_layout) for k in left_keys]
        self._right_key_fns = [compile_expression(k, right_layout) for k in right_keys]
        combined = build_layout(list(left.columns) + list(right.columns))
        self._residual = (
            compile_predicate(residual, combined) if residual is not None else None
        )

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def describe(self) -> str:
        return "MergeJoin(INNER)"

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        yield from chunk_rows(self._merge(ctx), ctx.batch_size)

    def _merge(self, ctx: ExecutionContext) -> Iterator[Row]:
        left_rows = self._keyed_sorted(self.left, self._left_key_fns, ctx)
        right_rows = self._keyed_sorted(self.right, self._right_key_fns, ctx)
        residual = self._residual
        li = ri = 0
        while li < len(left_rows) and ri < len(right_rows):
            left_key = left_rows[li][0]
            right_key = right_rows[ri][0]
            if left_key < right_key:
                li += 1
            elif left_key > right_key:
                ri += 1
            else:
                left_end = li
                while left_end < len(left_rows) and left_rows[left_end][0] == left_key:
                    left_end += 1
                right_end = ri
                while (
                    right_end < len(right_rows)
                    and right_rows[right_end][0] == right_key
                ):
                    right_end += 1
                for _, left_row in left_rows[li:left_end]:
                    for _, right_row in right_rows[ri:right_end]:
                        row = left_row + right_row
                        if residual is None or residual(row):
                            yield row
                li, ri = left_end, right_end

    @staticmethod
    def _keyed_sorted(child, key_fns, ctx):
        keyed = []
        for batch in child.iterate_batches(ctx):
            ctx.check_deadline()
            for row in batch:
                key = tuple(fn(row) for fn in key_fns)
                if any(part is None for part in key):
                    continue  # NULL keys never equi-match
                keyed.append((key, row))
        keyed.sort(key=lambda pair: pair[0])
        return keyed


class NestedLoopJoinExec(PhysicalOperator):
    """Fallback join for non-equi conditions (and EXISTS-style semis)."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        kind: str,
        condition: Optional[ast.Expr],
        columns: Sequence[RelColumn],
    ) -> None:
        super().__init__(columns)
        self.left = left
        self.right = right
        self.kind = kind
        combined = build_layout(list(left.columns) + list(right.columns))
        self._condition = (
            compile_predicate(condition, combined) if condition is not None else None
        )

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"NestedLoopJoin({self.kind})"

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        right_rows = _materialize_rows(self.right, ctx)
        condition = self._condition
        null_right = (None,) * len(self.right.columns)
        kind = self.kind
        size = ctx.batch_size
        width = len(self.columns)
        for batch in self.left.iterate_batches(ctx):
            out: List[Row] = []
            for left_row in batch:
                if kind in ("SEMI", "ANTI"):
                    if condition is None:
                        matched = bool(right_rows)
                    else:
                        matched = any(
                            condition(left_row + right_row)
                            for right_row in right_rows
                        )
                    if (kind == "SEMI") == matched:
                        out.append(left_row)
                    continue
                matched = False
                for right_row in right_rows:
                    row = left_row + right_row
                    if condition is None or condition(row):
                        matched = True
                        out.append(row)
                if kind == "LEFT" and not matched:
                    out.append(left_row + null_right)
            if out:
                yield from pages_from_rows(out, size, width)


class BindJoinExec(PhysicalOperator):
    """Semijoin-reduced join: ship probe keys, fetch only matching rows.

    ``bound_side`` says which input is the reduced remote fragment; the
    other input is materialized first to produce the key list.
    """

    def __init__(
        self,
        probe: PhysicalOperator,
        remote: RemoteQueryOp,
        adapter: Any,
        page_rows: int,
        bound_side: str,  # "left" | "right"
        kind: str,
        condition: Optional[ast.Expr],
        columns: Sequence[RelColumn],
        null_aware: bool = False,
        vectorized: bool = True,
    ) -> None:
        super().__init__(columns)
        self.probe = probe
        self.remote = remote
        self.adapter = adapter
        self.page_rows = max(page_rows, 1)
        self.bound_side = bound_side
        self.kind = kind
        self.condition = condition
        self.null_aware = null_aware
        self._vectorized = vectorized
        bind = remote.bind
        assert bind is not None
        self._bind = bind
        self._probe_key_kernel = compile_batch_expression(
            bind.probe_key, build_layout(probe.columns), vectorized
        )
        self._remote_sizer = make_batch_sizer(remote.columns)
        self._key_sizer = _column_sizer(bind.fragment_key.dtype)

    def children(self) -> List[PhysicalOperator]:
        return [self.probe]

    def describe(self) -> str:
        return (
            f"BindJoin({self.kind}, source={self.remote.source_name}, "
            f"key={self._bind.fragment_key.name})"
        )

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        probe_rows: List[Row] = []
        keys: Set[Any] = set()
        key_kernel = self._probe_key_kernel
        for batch in self.probe.iterate_batches(ctx):
            ctx.check_deadline()
            probe_rows.extend(batch)
            for value in key_kernel(batch):
                if value is not None:
                    keys.add(value)
        remote_rows: List[Row] = []
        try:
            for page in self._fetch_reduced_pages(ctx, keys):
                ctx.check_deadline(self.remote.source_name)
                remote_rows.extend(page)
        except SourceError as exc:
            # Graceful degradation mirrors ExchangeExec: the dead remote
            # side contributes no rows and the join proceeds (INNER drops
            # unmatched probe rows; LEFT pads them with NULLs).
            if ctx.on_source_failure != "partial":
                raise
            ctx.record_exclusion(exc.source_name, exc)
            remote_rows = []

        # Assemble the join with the original operand orientation.
        remote_stub = StaticRowsExec(remote_rows, self.remote.columns)
        probe_stub = StaticRowsExec(probe_rows, self.probe.columns)
        if self.bound_side == "right":
            left_op, right_op = probe_stub, remote_stub
            left_cols, right_cols = self.probe.columns, self.remote.columns
        else:
            left_op, right_op = remote_stub, probe_stub
            left_cols, right_cols = self.remote.columns, self.probe.columns
        keys_split = equi_join_keys(self.condition, left_cols, right_cols)
        if keys_split is not None:
            left_keys, right_keys, residual = keys_split
            join: PhysicalOperator = HashJoinExec(
                left_op,
                right_op,
                self.kind,
                left_keys,
                right_keys,
                ast.conjoin(residual),
                self.columns,
                self.null_aware,
                vectorized=self._vectorized,
            )
        else:
            join = NestedLoopJoinExec(
                left_op, right_op, self.kind, self.condition, self.columns
            )
        yield from join.iterate_batches(ctx)

    def _batch_fragment(self, batch: Sequence[Any]) -> Fragment:
        """The reduced fragment fetching one key batch."""
        bind = self._bind
        literals = tuple(
            ast.Literal(value, bind.fragment_key.dtype) for value in batch
        )
        predicate: ast.Expr
        if len(literals) == 1:
            predicate = ast.BinaryOp("=", bind.fragment_key.ref(), literals[0])
        else:
            predicate = ast.InList(bind.fragment_key.ref(), literals, False)
        return Fragment(
            self.remote.source_name,
            FilterOp(self.remote.fragment, predicate),
        )

    def _fetch_reduced_pages(
        self, ctx: ExecutionContext, keys: Set[Any]
    ) -> Iterator[Batch]:
        bind = self._bind
        ordered = sorted(keys, key=repr)
        ctx.add_metric("fragments_executed", 1)
        if not ordered:
            # Still report the (empty) round trip the mediator performs to
            # learn there is nothing to fetch? No request is sent at all:
            # an empty key set proves the join is empty without touching
            # the source.
            return
        source = self.remote.source_name
        sizer = self._remote_sizer
        key_sizer = self._key_sizer
        batches = [
            ordered[start : start + bind.batch_size]
            for start in range(0, len(ordered), bind.batch_size)
        ]
        if ctx.scheduler is not None:
            # Ship every key batch up front: the batches are independent
            # reduced fragments, so they fetch concurrently (subject to the
            # per-source cap) while we drain them in order.
            tasks = []
            for batch in batches:
                ctx.add_metric("semijoin_batches", 1)
                ctx.charge_request(source, key_sizer(batch))
                tasks.append(
                    ctx.scheduler.submit_fragment(
                        self.adapter,
                        self._batch_fragment(batch),
                        self.page_rows,
                        ctx,
                        sizer=sizer,
                    )
                )
            for task in tasks:
                yield from ctx.scheduler.stream_pages(task, ctx)
            return
        breaker = ctx.breaker_for(source)
        if breaker is not None and not breaker.allow():
            raise SourceError(
                source,
                "circuit breaker open; no healthy replica registered "
                "(failing fast)",
            )
        span = ctx.trace_child(
            f"fragment:{source}", "fragment", source=source, mode="bindjoin",
            key_batches=len(batches),
        )
        try:
            for batch in batches:
                ctx.metrics.semijoin_batches += 1
                ctx.charge_request(source, key_sizer(batch))
                span.event("key-batch", keys=len(batch))
                fragment = self._batch_fragment(batch)
                for page in ctx.execute_pages(self.adapter, fragment, self.page_rows):
                    ctx.charge_transfer(source, page, 1, sizer)
                    span.event("page", rows=len(page))
                    if page:
                        yield page
        except SourceError as exc:
            if breaker is not None and breaker.record_failure():
                ctx.add_metric("breaker_trips", 1)
                span.event("breaker-trip", source=source)
            span.set_attribute("error", repr(exc))
            raise
        finally:
            span.end()
        if breaker is not None:
            breaker.record_success()


class HashAggregateExec(PhysicalOperator):
    """Hash aggregation with vectorized evaluation and bucketed accumulation.

    Group keys and aggregate arguments are computed as whole columns per
    input page. Accumulation is *bucketed*: each page's rows are grouped
    by key once, then every accumulator ingests its group's values via a
    single bulk ``add_many``/``add_repeat`` call (a gathered slice, or
    the whole argument column when the page is single-group) instead of
    one ``add`` per row. Within every group the value order is exactly
    the global row order, so float SUM/AVG stay bit-identical to the
    row-at-a-time loop.

    With a morsel pool armed (``ctx.morsel_pool``) the kernel evaluation
    — the expensive, C-loop-heavy stage — runs on the workers page by
    page while the coordinator consumes results in input order and keeps
    all accumulation single-threaded; merging per-worker float partials
    would re-associate additions, so no partial states are ever formed.
    """

    def __init__(
        self,
        plan: AggregateOp,
        child: PhysicalOperator,
        vectorized: bool = True,
    ) -> None:
        super().__init__(plan.output_columns)
        self.child = child
        self.plan = plan
        layout = build_layout(child.columns)
        self._group_kernels = [
            compile_batch_expression(e, layout, vectorized)
            for e in plan.group_expressions
        ]
        self._argument_kernels = [
            compile_batch_expression(call.argument, layout, vectorized)
            if call.argument is not None
            else None
            for call in plan.aggregates
        ]

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def _evaluate(self, batch: Batch) -> Tuple[Any, ...]:
        """Kernel evaluation for one page (safe to run on pool workers)."""
        key_columns = [kernel(batch) for kernel in self._group_kernels]
        argument_columns = [
            kernel(batch) if kernel is not None else None
            for kernel in self._argument_kernels
        ]
        return len(batch), key_columns, argument_columns

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        groups: Dict[Any, List[Any]] = {}
        order: List[Any] = []
        aggregates = self.plan.aggregates
        single_key = len(self._group_kernels) == 1
        global_agg = not self._group_kernels

        def checked_batches() -> Iterator[Batch]:
            for batch in self.child.iterate_batches(ctx):
                ctx.check_deadline()
                yield batch

        pool = ctx.morsel_pool
        if pool is not None:
            evaluated: Iterator[Any] = pool.ordered_map(
                self._evaluate, checked_batches()
            )
        else:
            evaluated = map(self._evaluate, checked_batches())
        for num_rows, key_columns, argument_columns in evaluated:
            if global_agg:
                buckets: Dict[Any, Any] = {(): range(num_rows)}
                local_order: List[Any] = [()]
            else:
                # Scalar dict keys for the common single-key group-by;
                # transposed tuples otherwise (same ==/hash semantics as
                # the row engine's per-row key tuples).
                keys = (
                    key_columns[0] if single_key else list(zip(*key_columns))
                )
                buckets = {}
                local_order = []
                get_bucket = buckets.get
                for index, key in enumerate(keys):
                    bucket = get_bucket(key)
                    if bucket is None:
                        buckets[key] = [index]
                        local_order.append(key)
                    else:
                        bucket.append(index)
            for key in local_order:
                indices = buckets[key]
                state = groups.get(key)
                if state is None:
                    state = [make_accumulator(call) for call in aggregates]
                    groups[key] = state
                    order.append(key)
                count = len(indices)
                whole_page = count == num_rows
                for accumulator, column in zip(state, argument_columns):
                    if column is None:
                        accumulator.add_repeat(count)
                    elif whole_page:
                        accumulator.add_many(column)
                    else:
                        accumulator.add_many(
                            list(map(column.__getitem__, indices))
                        )
        width = len(self.columns)
        if not groups and global_agg:
            state = [make_accumulator(call) for call in aggregates]
            row = tuple(accumulator.result() for accumulator in state)
            yield Page.from_rows([row], width)
            return
        size = ctx.batch_size
        out: List[Row] = []
        for key in order:
            prefix = (key,) if single_key else key
            out.append(
                prefix
                + tuple(accumulator.result() for accumulator in groups[key])
            )
            if len(out) >= size:
                yield Page.from_rows(out, width)
                out = []
        if out:
            yield Page.from_rows(out, width)


class WindowExec(PhysicalOperator):
    """Materializes input and appends window-function columns."""

    def __init__(self, plan: "WindowOp", child: PhysicalOperator) -> None:
        super().__init__(plan.output_columns)
        self.child = child
        self.plan = plan

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def describe(self) -> str:
        names = ", ".join(spec.function for spec in self.plan.specs)
        return f"Window({names})"

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        from .fragments import apply_window

        rows = _materialize_rows(self.child, ctx)
        yield from chunk_rows(
            apply_window(rows, self.plan.child.output_columns, self.plan.specs),
            ctx.batch_size,
        )


class SortExec(PhysicalOperator):
    def __init__(
        self, child: PhysicalOperator, keys: Sequence[Tuple[ast.Expr, bool]]
    ) -> None:
        super().__init__(child.columns)
        self.child = child
        layout = build_layout(child.columns)
        self._key_fns = [compile_expression(expr, layout) for expr, _ in keys]
        self._directions = [ascending for _, ascending in keys]

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        rows = _materialize_rows(self.child, ctx)
        yield from chunk_rows(
            sort_rows(rows, self._key_fns, self._directions), ctx.batch_size
        )


class LimitExec(PhysicalOperator):
    def __init__(
        self, child: PhysicalOperator, limit: Optional[int], offset: int
    ) -> None:
        super().__init__(child.columns)
        self.child = child
        self.limit = limit
        self.offset = offset

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        remaining = self.limit
        to_skip = self.offset
        if remaining is not None and remaining <= 0:
            return  # LIMIT 0: nothing to pull at all
        for batch in self.child.iterate_batches(ctx):
            if to_skip > 0:
                if to_skip >= len(batch):
                    to_skip -= len(batch)
                    continue
                batch = batch[to_skip:]
                to_skip = 0
            if remaining is None:
                yield batch
                continue
            if len(batch) >= remaining:
                # The limit lands inside (or exactly at the end of) this
                # batch: emit the prefix and stop pulling the child.
                yield batch[:remaining]
                return
            remaining -= len(batch)
            yield batch


class DistinctExec(PhysicalOperator):
    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__(child.columns)
        self.child = child

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        seen: Set[Row] = set()
        for batch in self.child.iterate_batches(ctx):
            page = as_page(batch)
            keep: List[int] = []
            for index, row in enumerate(page):
                if row not in seen:
                    seen.add(row)
                    keep.append(index)
            if not keep:
                continue
            if len(keep) == page.num_rows:
                yield page
            else:
                yield page.take(keep)


class UnionExec(PhysicalOperator):
    def __init__(
        self, inputs: List[PhysicalOperator], columns: Sequence[RelColumn]
    ) -> None:
        super().__init__(columns)
        self.inputs = inputs

    def children(self) -> List[PhysicalOperator]:
        return list(self.inputs)

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        for child in self.inputs:
            yield from child.iterate_batches(ctx)


class SetDifferenceExec(PhysicalOperator):
    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        operation: str,
        columns: Sequence[RelColumn],
        all: bool = False,
    ) -> None:
        super().__init__(columns)
        self.left = left
        self.right = right
        self.operation = operation
        self.all = all

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def describe(self) -> str:
        suffix = " ALL" if self.all else ""
        return f"SetDifference({self.operation}{suffix})"

    def iterate_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        if self.all:
            from collections import Counter

            remaining = Counter(
                row
                for batch in self.right.iterate_batches(ctx)
                for row in batch
            )
            for batch in self.left.iterate_batches(ctx):
                page = as_page(batch)
                keep: List[int] = []
                for index, row in enumerate(page):
                    if remaining[row] > 0:
                        remaining[row] -= 1
                        if self.operation == "INTERSECT":
                            keep.append(index)
                    elif self.operation == "EXCEPT":
                        keep.append(index)
                if keep:
                    yield page.take(keep)
            return
        right_rows = {
            row
            for batch in self.right.iterate_batches(ctx)
            for row in batch
        }
        emitted: Set[Row] = set()
        for batch in self.left.iterate_batches(ctx):
            page = as_page(batch)
            keep = []
            for index, row in enumerate(page):
                if row in emitted:
                    continue
                member = row in right_rows
                if (self.operation == "EXCEPT") != member:
                    emitted.add(row)
                    keep.append(index)
            if keep:
                yield page.take(keep)


# ---------------------------------------------------------------------------
# physical planning
# ---------------------------------------------------------------------------


JOIN_ALGORITHMS = ("auto", "hash", "merge")


class PhysicalPlanner:
    """Turns an optimized logical plan into a physical operator tree.

    ``join_algorithm`` selects the equi-join implementation: ``auto``/
    ``hash`` use hash joins; ``merge`` forces sort-merge for INNER
    equi-joins (other kinds keep hash — merge variants of semi/outer joins
    offer nothing here and hash handles their NULL subtleties already).

    ``vectorized`` selects the expression engine inside page-native
    operators: column-at-a-time kernels (the default) or the PR 2-era
    row-at-a-time closures looped per page (kept as a benchmark baseline
    and equivalence oracle — results and metrics are identical).

    ``fuse`` collapses maximal Filter/Project chains into a single
    :class:`FusedPipelineExec` (mask + gather + project in one pass per
    page). Single Filter/Project nodes keep their dedicated operators.
    """

    def __init__(
        self,
        catalog: Catalog,
        join_algorithm: str = "auto",
        parallel_fragments: int = 1,
        vectorized: bool = True,
        fuse: bool = False,
    ) -> None:
        if join_algorithm not in JOIN_ALGORITHMS:
            raise PlanError(f"unknown join algorithm {join_algorithm!r}")
        self._catalog = catalog
        self._join_algorithm = join_algorithm
        self._parallel_fragments = max(parallel_fragments, 1)
        self._vectorized = vectorized
        self._fuse = fuse

    def build(self, plan: LogicalPlan) -> PhysicalOperator:
        if self._fuse and isinstance(plan, (FilterOp, ProjectOp)):
            steps: List[LogicalPlan] = []
            node: LogicalPlan = plan
            while isinstance(node, (FilterOp, ProjectOp)):
                steps.append(node)
                node = node.child
            if len(steps) >= 2:
                return FusedPipelineExec(
                    self.build(node),
                    list(reversed(steps)),
                    self._vectorized,
                )
        if isinstance(plan, RemoteQueryOp):
            if plan.bind is not None:
                raise PlanError(
                    "a bound remote fragment must be consumed by its join"
                )
            return self._exchange(plan)
        if isinstance(plan, ValuesOp):
            return StaticRowsExec(list(plan.rows), plan.columns)
        if isinstance(plan, ScanOp):
            raise PlanError(
                f"bare scan of {plan.table.name!r} survived pushdown; "
                "this is a planner bug"
            )
        if isinstance(plan, FilterOp):
            return FilterExec(
                self.build(plan.child), plan.predicate, self._vectorized
            )
        if isinstance(plan, ProjectOp):
            return ProjectExec(
                self.build(plan.child),
                plan.expressions,
                plan.columns,
                self._vectorized,
            )
        if isinstance(plan, JoinOp):
            return self._join(plan)
        if isinstance(plan, AggregateOp):
            return HashAggregateExec(
                plan, self.build(plan.child), self._vectorized
            )
        if isinstance(plan, WindowOp):
            return WindowExec(plan, self.build(plan.child))
        if isinstance(plan, SortOp):
            return SortExec(self.build(plan.child), plan.keys)
        if isinstance(plan, LimitOp):
            return LimitExec(self.build(plan.child), plan.limit, plan.offset)
        if isinstance(plan, DistinctOp):
            return DistinctExec(self.build(plan.child))
        if isinstance(plan, UnionOp):
            return UnionExec(
                [self.build(child) for child in plan.inputs], plan.columns
            )
        if isinstance(plan, SetDifferenceOp):
            return SetDifferenceExec(
                self.build(plan.left),
                self.build(plan.right),
                plan.operation,
                plan.columns,
                plan.all,
            )
        raise PlanError(f"cannot build physical plan for {type(plan).__name__}")

    # -- helpers ---------------------------------------------------------------

    def _exchange(self, plan: RemoteQueryOp) -> ExchangeExec:
        adapter = self._catalog.source(plan.source_name)
        page_rows = adapter.capabilities().page_rows
        return ExchangeExec(
            adapter,
            Fragment(plan.source_name, plan.fragment),
            plan.columns,
            page_rows,
            mode="parallel" if self._parallel_fragments > 1 else "sequential",
        )

    def _join(self, plan: JoinOp) -> PhysicalOperator:
        bound_side: Optional[str] = None
        if isinstance(plan.right, RemoteQueryOp) and plan.right.bind is not None:
            bound_side = "right"
        elif isinstance(plan.left, RemoteQueryOp) and plan.left.bind is not None:
            bound_side = "left"
        if bound_side is not None:
            remote = plan.right if bound_side == "right" else plan.left
            probe_logical = plan.left if bound_side == "right" else plan.right
            assert isinstance(remote, RemoteQueryOp)
            adapter = self._catalog.source(remote.source_name)
            return BindJoinExec(
                probe=self.build(probe_logical),
                remote=remote,
                adapter=adapter,
                page_rows=adapter.capabilities().page_rows,
                bound_side=bound_side,
                kind=plan.kind,
                condition=plan.condition,
                columns=plan.output_columns,
                null_aware=plan.null_aware,
                vectorized=self._vectorized,
            )
        left = self.build(plan.left)
        right = self.build(plan.right)
        if plan.kind == "CROSS" or plan.condition is None:
            return NestedLoopJoinExec(
                left, right, plan.kind, plan.condition, plan.output_columns
            )
        keys = equi_join_keys(plan.condition, left.columns, right.columns)
        if keys is None:
            return NestedLoopJoinExec(
                left, right, plan.kind, plan.condition, plan.output_columns
            )
        left_keys, right_keys, residual = keys
        if self._join_algorithm == "merge" and plan.kind == "INNER":
            return MergeJoinExec(
                left,
                right,
                left_keys,
                right_keys,
                ast.conjoin(residual),
                plan.output_columns,
            )
        return HashJoinExec(
            left,
            right,
            plan.kind,
            left_keys,
            right_keys,
            ast.conjoin(residual),
            plan.output_columns,
            plan.null_aware,
            vectorized=self._vectorized,
        )

"""Semantic analysis: bind a parsed statement into a logical plan.

Responsibilities:

* resolve table references against the global catalog, expanding
  integration views inline (with cycle detection);
* resolve column references to :class:`~repro.core.logical.RelColumn`
  instances through lexical scopes;
* expand ``*`` / ``alias.*``;
* type-check every expression;
* normalize aggregation: collect aggregate calls from SELECT/HAVING/ORDER
  BY, deduplicate them, and rewrite the surrounding expressions to
  reference aggregate output columns;
* decorrelate uncorrelated ``IN (SELECT ...)`` / ``EXISTS`` conjuncts into
  SEMI/ANTI joins (``NOT IN`` keeps its NULL-aware semantics);
* line up set-operation branches positionally, inserting casts where the
  branch types merely widen.

The result is a fully bound :class:`~repro.core.logical.LogicalPlan` whose
expressions contain no syntactic :class:`~repro.sql.ast.ColumnRef` leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from ..catalog.catalog import Catalog, CatalogTable
from ..catalog.schema import Column, TableSchema
from ..datatypes import DataType, is_comparable, unify
from ..errors import BindError, UnknownObjectError
from ..sql import ast
from ..sql.functions import (
    aggregate_result_type,
    is_aggregate_name,
    is_scalar_name,
)
from ..sql.parser import parse_select
from . import logical
from .expressions import infer_type
from .logical import (
    AggregateCall,
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    LogicalPlan,
    MaterializedRowsOp,
    ProjectOp,
    RelColumn,
    ScanOp,
    SetDifferenceOp,
    SortOp,
    UnionOp,
    ValuesOp,
    WindowOp,
)


@dataclass
class Binding:
    """One FROM-clause relation visible in a scope."""

    name: str
    columns: List[RelColumn]

    def find(self, column_name: str) -> List[RelColumn]:
        lowered = column_name.lower()
        return [c for c in self.columns if c.name.lower() == lowered]


class Scope:
    """Lexical scope: the relations visible to a SELECT block's expressions.

    ``parent`` links a subquery scope to the enclosing query's scope, which
    is what makes correlated ``EXISTS`` / ``IN`` references resolvable —
    inner relations shadow outer ones, SQL-style.
    """

    def __init__(
        self,
        bindings: Optional[List[Binding]] = None,
        parent: Optional["Scope"] = None,
    ) -> None:
        self.bindings: List[Binding] = bindings or []
        self.parent = parent

    def add(self, binding: Binding) -> None:
        if any(b.name.lower() == binding.name.lower() for b in self.bindings):
            raise BindError(f"duplicate relation name in FROM: {binding.name!r}")
        self.bindings.append(binding)

    def merge(self, other: "Scope") -> "Scope":
        merged = Scope(list(self.bindings), parent=self.parent or other.parent)
        for binding in other.bindings:
            merged.add(binding)
        return merged

    def binding(self, name: str) -> Binding:
        for candidate in self.bindings:
            if candidate.name.lower() == name.lower():
                return candidate
        if self.parent is not None:
            return self.parent.binding(name)
        raise BindError(f"unknown relation: {name!r}")

    def resolve(self, table: Optional[str], column_name: str) -> RelColumn:
        if table is not None:
            matches = self.binding(table).find(column_name)
            if not matches:
                raise BindError(f"relation {table!r} has no column {column_name!r}")
            if len(matches) > 1:
                raise BindError(
                    f"column {column_name!r} is ambiguous within relation {table!r}"
                )
            return matches[0]
        matches: List[RelColumn] = []
        for binding in self.bindings:
            matches.extend(binding.find(column_name))
        if not matches:
            if self.parent is not None:
                return self.parent.resolve(table, column_name)
            raise BindError(f"unknown column: {column_name!r}")
        if len(matches) > 1:
            raise BindError(f"column reference {column_name!r} is ambiguous")
        return matches[0]

    def column_ids(self) -> Set[int]:
        """Identity set of every column visible at this level (no parents)."""
        return {
            column.column_id
            for binding in self.bindings
            for column in binding.columns
        }

    def all_columns(self) -> List[RelColumn]:
        columns: List[RelColumn] = []
        for binding in self.bindings:
            columns.extend(binding.columns)
        return columns


class Analyzer:
    """Binds statements against a catalog. Stateless between calls except
    for the view-expansion stack (cycle detection)."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._view_stack: List[str] = []

    # -- public entry points --------------------------------------------------

    def bind_statement(
        self, statement: ast.Statement, outer: Optional[Scope] = None
    ) -> LogicalPlan:
        """Bind a SELECT or set-operation chain into a logical plan.

        ``outer`` is the enclosing scope when binding a (possibly
        correlated) subquery; set operations never see outer scopes.
        """
        if isinstance(statement, ast.SetOperation):
            return self._bind_set_operation(statement)
        return self._bind_select(statement, outer)

    # -- FROM clause -----------------------------------------------------------

    def _bind_from(self, item: ast.FromItem) -> Tuple[LogicalPlan, Scope]:
        if isinstance(item, ast.TableRef):
            return self._bind_table_ref(item)
        if isinstance(item, ast.SubqueryRef):
            plan = self.bind_statement(item.select)
            scope = Scope()
            scope.add(Binding(item.alias, list(plan.output_columns)))
            return plan, scope
        if isinstance(item, ast.Join):
            return self._bind_join(item)
        raise BindError(f"unsupported FROM item: {type(item).__name__}")

    def _bind_table_ref(self, ref: ast.TableRef) -> Tuple[LogicalPlan, Scope]:
        try:
            entry = self._catalog.table(ref.name)
        except UnknownObjectError as exc:
            raise BindError(str(exc)) from exc
        binding_name = ref.alias or ref.name
        if entry.is_view:
            materialized = getattr(self._catalog, "materialized", None)
            if materialized is not None:
                snapshot = materialized.substitute(entry.name)
                if snapshot is not None:
                    rows, names, dtypes = snapshot
                    columns = [
                        RelColumn(name, dtype)
                        for name, dtype in zip(names, dtypes)
                    ]
                    plan = MaterializedRowsOp(
                        rows, columns, view_name=entry.name
                    )
                    scope = Scope()
                    scope.add(Binding(binding_name, columns))
                    return plan, scope
            plan = self._expand_view(entry)
            # A view reference re-exposes the view plan's columns under the
            # (aliased) view name.
            scope = Scope()
            scope.add(Binding(binding_name, list(plan.output_columns)))
            return plan, scope
        assert entry.schema is not None
        columns = [
            RelColumn(column.name, column.dtype, origin=(entry.name.lower(), column.name))
            for column in entry.schema.columns
        ]
        plan = ScanOp(entry, binding_name, columns)
        scope = Scope()
        scope.add(Binding(binding_name, columns))
        return plan, scope

    def _expand_view(self, entry: CatalogTable) -> LogicalPlan:
        key = entry.name.lower()
        if key in self._view_stack:
            chain = " -> ".join(self._view_stack + [key])
            raise BindError(f"circular view definition: {chain}")
        self._view_stack.append(key)
        try:
            assert entry.view_sql is not None
            parsed = parse_select(entry.view_sql)
            plan = self.bind_statement(parsed)
        finally:
            self._view_stack.pop()
        if entry.schema is None:
            derived = TableSchema(
                entry.name,
                [Column(c.name, c.dtype) for c in plan.output_columns],
            )
            self._catalog.cache_view_schema(entry.name, derived)
        return plan

    def _bind_join(self, join: ast.Join) -> Tuple[LogicalPlan, Scope]:
        left_plan, left_scope = self._bind_from(join.left)
        right_plan, right_scope = self._bind_from(join.right)
        scope = left_scope.merge(right_scope)
        if join.kind == "CROSS":
            return JoinOp(left_plan, right_plan, "CROSS", None), scope
        if join.condition is None:
            raise BindError(f"{join.kind} JOIN requires an ON condition")
        condition = self._bind_expression(join.condition, scope)
        self._require_boolean(condition, "JOIN condition")
        return JoinOp(left_plan, right_plan, join.kind, condition), scope

    # -- SELECT ---------------------------------------------------------------

    def _bind_select(
        self, select: ast.Select, outer: Optional[Scope] = None
    ) -> LogicalPlan:
        if select.from_item is None:
            plan: LogicalPlan = ValuesOp([()], [])
            scope = Scope()
        else:
            plan, scope = self._bind_from(select.from_item)
        scope.parent = outer

        # WHERE: plain conjuncts filter; IN/EXISTS conjuncts become joins.
        residual, subquery_joins = self._split_where(select.where, scope)
        if residual is not None:
            self._require_boolean(residual, "WHERE clause")
            plan = FilterOp(plan, residual)
        for kind, right_plan, condition, null_aware in subquery_joins:
            plan = JoinOp(plan, right_plan, kind, condition, null_aware)

        # Select list with * expansion.
        select_exprs: List[ast.Expr] = []
        select_aliases: List[str] = []
        for index, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                columns = (
                    scope.binding(item.expr.table).columns
                    if item.expr.table is not None
                    else scope.all_columns()
                )
                if not columns:
                    raise BindError("SELECT * with no FROM relations")
                for column in columns:
                    select_exprs.append(column.ref())
                    select_aliases.append(column.name)
                continue
            bound = self._bind_expression(
                item.expr, scope, allow_aggregates=True, allow_windows=True
            )
            select_exprs.append(bound)
            select_aliases.append(item.alias or _derive_name(item.expr, len(select_exprs)))

        bound_having = (
            self._bind_expression(select.having, scope, allow_aggregates=True)
            if select.having is not None
            else None
        )

        has_aggregates = any(ast.contains_aggregate(e) for e in select_exprs) or (
            bound_having is not None and ast.contains_aggregate(bound_having)
        )
        grouped = bool(select.group_by) or has_aggregates

        # ORDER BY binding happens in two flavors: positional/alias references
        # resolve to select items; anything else binds in the FROM scope.
        order_specs: List[Tuple[Union[int, ast.Expr], bool]] = []
        for order_item in select.order_by:
            target = self._resolve_order_target(
                order_item.expr,
                select_aliases,
                select_exprs,
                scope,
                allow_aggregates=grouped,
            )
            order_specs.append((target, order_item.ascending))

        if grouped:
            plan, select_exprs, bound_having, order_specs = self._bind_aggregation(
                plan, scope, select, select_exprs, bound_having, order_specs
            )
            if bound_having is not None:
                self._require_boolean(bound_having, "HAVING clause")
                plan = FilterOp(plan, bound_having)
        elif bound_having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")

        plan, select_exprs, order_specs = self._plan_windows(
            plan, select_exprs, order_specs, grouped
        )

        # Validate select expression types. Plain column forwards keep their
        # origin lineage so statistics survive projections.
        output_columns = [
            RelColumn(
                alias,
                infer_type(expr),
                origin=expr.column.origin if isinstance(expr, ast.BoundRef) else None,
            )
            for expr, alias in zip(select_exprs, select_aliases)
        ]
        plan = ProjectOp(plan, list(select_exprs), output_columns)

        if select.distinct:
            plan = DistinctOp(plan)

        plan = self._apply_order_limit(
            plan,
            select_exprs,
            order_specs,
            select.limit,
            select.offset,
            distinct=select.distinct,
        )
        return plan

    # -- WHERE / subqueries ------------------------------------------------------

    def _split_where(
        self, where: Optional[ast.Expr], scope: Scope
    ) -> Tuple[
        Optional[ast.Expr],
        List[Tuple[str, LogicalPlan, Optional[ast.Expr], bool]],
    ]:
        """Separate plain predicates from IN/EXISTS subquery conjuncts.

        Returns ``(residual_predicate, joins)`` where each join entry is
        ``(kind, right_plan, condition, null_aware)``.
        """
        if where is None:
            return None, []
        residual: List[ast.Expr] = []
        joins: List[Tuple[str, LogicalPlan, Optional[ast.Expr], bool]] = []
        for conjunct in ast.conjuncts(where):
            node = conjunct
            flipped = False
            while isinstance(node, ast.UnaryOp) and node.op == "NOT":
                node = node.operand
                flipped = not flipped
            if isinstance(node, ast.InSubquery):
                negated = node.negated ^ flipped
                operand = self._bind_expression(node.operand, scope)
                subplan = self.bind_statement(node.subquery, outer=scope)
                sub_columns = subplan.output_columns
                if len(sub_columns) != 1:
                    raise BindError("IN subquery must produce exactly one column")
                if not is_comparable(infer_type(operand), sub_columns[0].dtype):
                    raise BindError(
                        "IN subquery column type is not comparable to the operand"
                    )
                subplan, correlation = self._decorrelate(subplan, scope)
                if correlation and negated:
                    raise BindError(
                        "correlated NOT IN is not supported (its NULL "
                        "semantics interact with correlation); rewrite with "
                        "NOT EXISTS"
                    )
                condition = ast.conjoin(
                    [ast.BinaryOp("=", operand, sub_columns[0].ref())]
                    + correlation
                )
                kind = "ANTI" if negated else "SEMI"
                joins.append((kind, subplan, condition, negated))
                continue
            if isinstance(node, ast.Exists):
                negated = node.negated ^ flipped
                subplan = self.bind_statement(node.subquery, outer=scope)
                subplan, correlation = self._decorrelate(subplan, scope)
                kind = "ANTI" if negated else "SEMI"
                joins.append((kind, subplan, ast.conjoin(correlation), False))
                continue
            bound = self._bind_expression(conjunct, scope)
            residual.append(bound)
        return ast.conjoin(residual), joins

    def _decorrelate(
        self, subplan: LogicalPlan, outer_scope: Scope
    ) -> Tuple[LogicalPlan, List[ast.Expr]]:
        """Pull correlated WHERE conjuncts out of a bound subquery plan.

        Returns the cleaned plan plus the extracted conjuncts (which become
        part of the enclosing SEMI/ANTI join condition). Correlation is
        supported only in the subquery's WHERE clause; outer references
        anywhere else raise :class:`BindError`.
        """
        outer_ids = outer_scope.column_ids()
        if outer_scope.parent is not None:
            # Nested correlation levels: include every enclosing scope.
            parent = outer_scope.parent
            while parent is not None:
                outer_ids |= parent.column_ids()
                parent = parent.parent

        correlation: List[ast.Expr] = []

        def strip(node: LogicalPlan) -> Optional[LogicalPlan]:
            if not isinstance(node, FilterOp):
                return None
            inner: List[ast.Expr] = []
            pulled: List[ast.Expr] = []
            for conjunct in ast.conjuncts(node.predicate):
                refs = {c.column_id for c in ast.referenced_columns(conjunct)}
                if refs & outer_ids:
                    pulled.append(conjunct)
                else:
                    inner.append(conjunct)
            if not pulled:
                return None
            correlation.extend(pulled)
            remaining = ast.conjoin(inner)
            if remaining is None:
                return node.child
            return FilterOp(node.child, remaining)

        cleaned = logical.transform_plan(subplan, strip)

        # Anything still referencing the outer query is unsupported.
        leftover = _plan_expression_refs(cleaned) & outer_ids
        if leftover:
            raise BindError(
                "correlated subqueries may reference outer columns only in "
                "their WHERE clause"
            )
        if not correlation:
            return cleaned, []

        # The join condition needs the referenced *inner* columns in the
        # subplan's output; widen its top projection if necessary.
        needed: Dict[int, RelColumn] = {}
        for conjunct in correlation:
            for column in ast.referenced_columns(conjunct):
                if column.column_id not in outer_ids:
                    needed[column.column_id] = column
        output_ids = {c.column_id for c in cleaned.output_columns}
        missing = [c for cid, c in needed.items() if cid not in output_ids]
        if missing:
            if not isinstance(cleaned, ProjectOp):
                raise BindError(
                    "unsupported correlated subquery shape (correlation "
                    "through aggregation/distinct is not supported)"
                )
            child_ids = {c.column_id for c in cleaned.child.output_columns}
            if any(c.column_id not in child_ids for c in missing):
                raise BindError(
                    "unsupported correlated subquery shape (correlated "
                    "column is not available under the select list)"
                )
            cleaned = ProjectOp(
                cleaned.child,
                cleaned.expressions + [c.ref() for c in missing],
                cleaned.columns + missing,
            )
        return cleaned, correlation

    # -- aggregation -------------------------------------------------------------

    def _bind_aggregation(
        self,
        plan: LogicalPlan,
        scope: Scope,
        select: ast.Select,
        select_exprs: List[ast.Expr],
        bound_having: Optional[ast.Expr],
        order_specs: List[Tuple[Union[int, ast.Expr], bool]],
    ) -> Tuple[
        LogicalPlan,
        List[ast.Expr],
        Optional[ast.Expr],
        List[Tuple[Union[int, ast.Expr], bool]],
    ]:
        # 1. Bind GROUP BY expressions (ordinals and aliases allowed).
        group_exprs: List[ast.Expr] = []
        group_names: List[str] = []
        for syntax in select.group_by:
            if isinstance(syntax, ast.Literal) and syntax.dtype == DataType.INTEGER:
                ordinal = syntax.value
                if not 1 <= ordinal <= len(select_exprs):
                    raise BindError(f"GROUP BY position {ordinal} is out of range")
                expr = select_exprs[ordinal - 1]
                name = _select_alias(select, ordinal - 1) or f"group{len(group_exprs)+1}"
            else:
                expr, name = self._bind_group_expr(syntax, scope, select, select_exprs)
            if ast.contains_aggregate(expr):
                raise BindError("aggregate functions are not allowed in GROUP BY")
            group_exprs.append(expr)
            group_names.append(name)

        group_columns = [
            RelColumn(
                name,
                infer_type(expr),
                origin=expr.column.origin if isinstance(expr, ast.BoundRef) else None,
            )
            for name, expr in zip(group_names, group_exprs)
        ]

        # 2. Collect aggregate calls and rewrite the consuming expressions.
        aggregates: List[AggregateCall] = []
        aggregate_columns: List[RelColumn] = []

        def rewrite(expr: ast.Expr) -> ast.Expr:
            for index, group_expr in enumerate(group_exprs):
                if expr == group_expr:
                    return group_columns[index].ref()
            if isinstance(expr, ast.FunctionCall) and is_aggregate_name(expr.name):
                return self._register_aggregate(
                    expr, aggregates, aggregate_columns
                ).ref()
            # Rebuild with rewritten children (top-down so whole group
            # expressions match before their parts).
            children = ast.expression_children(expr)
            if not children:
                return expr
            return _rebuild(expr, [rewrite(child) for child in children])

        new_select = [rewrite(expr) for expr in select_exprs]
        new_having = rewrite(bound_having) if bound_having is not None else None
        new_order: List[Tuple[Union[int, ast.Expr], bool]] = []
        for target, ascending in order_specs:
            if isinstance(target, int):
                new_order.append((target, ascending))
            else:
                new_order.append((rewrite(target), ascending))

        aggregate_plan = AggregateOp(
            plan, group_exprs, group_columns, aggregates, aggregate_columns
        )

        # 3. Validate: rewritten expressions may only reference agg output.
        allowed = {c.column_id for c in aggregate_plan.output_columns}
        for expr in new_select + ([new_having] if new_having is not None else []):
            self._check_grouping(expr, allowed)
        for target, _ in new_order:
            if not isinstance(target, int):
                self._check_grouping(target, allowed)
        return aggregate_plan, new_select, new_having, new_order

    def _bind_group_expr(
        self,
        syntax: ast.Expr,
        scope: Scope,
        select: ast.Select,
        select_exprs: List[ast.Expr],
    ) -> Tuple[ast.Expr, str]:
        """Bind one GROUP BY expression; bare names may match select aliases."""
        if isinstance(syntax, ast.ColumnRef) and syntax.table is None:
            try:
                column = scope.resolve(None, syntax.name)
                return column.ref(), column.name
            except BindError:
                for index, item in enumerate(select.items):
                    if item.alias and item.alias.lower() == syntax.name.lower():
                        return select_exprs[index], item.alias
                raise
        bound = self._bind_expression(syntax, scope)
        name = syntax.name if isinstance(syntax, ast.ColumnRef) else "group"
        return bound, name

    def _register_aggregate(
        self,
        call: ast.FunctionCall,
        aggregates: List[AggregateCall],
        aggregate_columns: List[RelColumn],
    ) -> RelColumn:
        if call.star:
            new_call = AggregateCall(call.name, None, False)
            arg_type: Optional[DataType] = None
        else:
            if len(call.args) != 1:
                raise BindError(f"{call.name} takes exactly one argument")
            argument = call.args[0]
            if ast.contains_aggregate(argument):
                raise BindError("aggregate calls cannot be nested")
            new_call = AggregateCall(call.name, argument, call.distinct)
            arg_type = infer_type(argument)
        result_type = aggregate_result_type(call.name, arg_type)
        for index, existing in enumerate(aggregates):
            if existing == new_call:
                return aggregate_columns[index]
        aggregates.append(new_call)
        column = RelColumn(call.name.lower(), result_type)
        aggregate_columns.append(column)
        return column

    def _check_grouping(self, expr: ast.Expr, allowed: Set[int]) -> None:
        for column in ast.referenced_columns(expr):
            if column.column_id not in allowed:
                raise BindError(
                    f"column {column.name!r} must appear in GROUP BY or inside "
                    "an aggregate function"
                )

    # -- window functions -------------------------------------------------------

    def _plan_windows(
        self,
        plan: LogicalPlan,
        select_exprs: List[ast.Expr],
        order_specs: List[Tuple[Union[int, ast.Expr], bool]],
        grouped: bool,
    ) -> Tuple[
        LogicalPlan,
        List[ast.Expr],
        List[Tuple[Union[int, ast.Expr], bool]],
    ]:
        """Collect window calls from the select list / ORDER BY into a
        WindowOp and rewrite the expressions to reference its columns."""
        from .expressions import window_result_type
        from .logical import AggregateCall, WindowOp, WindowSpec

        windows: List[ast.WindowFunction] = []
        for expr in select_exprs + [
            target for target, _ in order_specs if not isinstance(target, int)
        ]:
            for node in ast.walk_expression(expr):
                if isinstance(node, ast.WindowFunction) and node not in windows:
                    windows.append(node)
        if not windows:
            return plan, select_exprs, order_specs
        if grouped:
            raise BindError(
                "window functions combined with GROUP BY/aggregates are "
                "not supported"
            )
        specs: List[WindowSpec] = []
        columns: List[RelColumn] = []
        for window in windows:
            dtype = window_result_type(window)  # validates shape too
            argument = window.args[0] if window.args else None
            specs.append(
                WindowSpec(
                    window.name, argument, window.partition_by, window.order_by
                )
            )
            columns.append(RelColumn(window.name.lower(), dtype))

        def substitute(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.WindowFunction):
                return columns[windows.index(node)].ref()
            return None

        new_select = [
            ast.transform_expression(expr, substitute) for expr in select_exprs
        ]
        new_order: List[Tuple[Union[int, ast.Expr], bool]] = [
            (target, asc)
            if isinstance(target, int)
            else (ast.transform_expression(target, substitute), asc)
            for target, asc in order_specs
        ]
        return WindowOp(plan, specs, columns), new_select, new_order

    # -- ORDER BY / LIMIT ----------------------------------------------------------

    def _resolve_order_target(
        self,
        syntax: ast.Expr,
        select_aliases: List[str],
        select_exprs: List[ast.Expr],
        scope: Scope,
        allow_aggregates: bool,
    ) -> Union[int, ast.Expr]:
        """An ORDER BY key is either a select-item index or a bound expression."""
        if isinstance(syntax, ast.Literal) and syntax.dtype == DataType.INTEGER:
            ordinal = syntax.value
            if not 1 <= ordinal <= len(select_aliases):
                raise BindError(f"ORDER BY position {ordinal} is out of range")
            return ordinal - 1
        if isinstance(syntax, ast.ColumnRef) and syntax.table is None:
            matches = [
                index
                for index, alias in enumerate(select_aliases)
                if alias.lower() == syntax.name.lower()
            ]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                # Duplicates of the *same* expression (SELECT id, id ...)
                # are unambiguous in every mainstream engine.
                first = select_exprs[matches[0]]
                if all(select_exprs[i] == first for i in matches[1:]):
                    return matches[0]
                raise BindError(f"ORDER BY alias {syntax.name!r} is ambiguous")
        return self._bind_expression(
            syntax, scope, allow_aggregates=allow_aggregates, allow_windows=True
        )

    def _apply_order_limit(
        self,
        plan: LogicalPlan,
        select_exprs: List[ast.Expr],
        order_specs: List[Tuple[Union[int, ast.Expr], bool]],
        limit: Optional[int],
        offset: Optional[int],
        distinct: bool,
    ) -> LogicalPlan:
        if order_specs:
            project = plan
            # The projection is the node directly below (or below Distinct).
            base_project = project.child if isinstance(project, DistinctOp) else project
            assert isinstance(base_project, ProjectOp)
            output = base_project.columns
            keys: List[Tuple[ast.Expr, bool]] = []
            hidden: List[Tuple[ast.Expr, RelColumn]] = []
            for target, ascending in order_specs:
                if isinstance(target, int):
                    keys.append((output[target].ref(), ascending))
                    continue
                matched = False
                for index, expr in enumerate(select_exprs):
                    if expr == target:
                        keys.append((output[index].ref(), ascending))
                        matched = True
                        break
                if matched:
                    continue
                if distinct:
                    raise BindError(
                        "ORDER BY expressions must appear in the select list "
                        "when SELECT DISTINCT is used"
                    )
                column = RelColumn("$order", infer_type(target))
                hidden.append((target, column))
                keys.append((column.ref(), ascending))
            if hidden:
                extended = ProjectOp(
                    base_project.child,
                    base_project.expressions + [expr for expr, _ in hidden],
                    base_project.columns + [column for _, column in hidden],
                )
                sorted_plan: LogicalPlan = SortOp(extended, keys)
                trim = ProjectOp(
                    sorted_plan,
                    [column.ref() for column in base_project.columns],
                    [column.derive() for column in base_project.columns],
                )
                plan = trim
            else:
                plan = SortOp(plan, keys)
        if limit is not None or offset:
            plan = LimitOp(plan, limit, offset or 0)
        return plan

    # -- set operations ---------------------------------------------------------

    def _bind_set_operation(self, operation: ast.SetOperation) -> LogicalPlan:
        left = self.bind_statement(operation.left)
        right = self.bind_statement(operation.right)
        left_columns = left.output_columns
        right_columns = right.output_columns
        if len(left_columns) != len(right_columns):
            raise BindError(
                f"{operation.op} branches have different column counts "
                f"({len(left_columns)} vs {len(right_columns)})"
            )
        unified: List[DataType] = []
        for left_col, right_col in zip(left_columns, right_columns):
            try:
                unified.append(unify(left_col.dtype, right_col.dtype))
            except Exception as exc:
                raise BindError(
                    f"{operation.op} branch column {left_col.name!r} has "
                    f"incompatible types {left_col.dtype} and {right_col.dtype}"
                ) from exc
        left = _coerce_branch(left, unified)
        right = _coerce_branch(right, unified)
        output = [
            RelColumn(column.name, dtype, origin=column.origin)
            for column, dtype in zip(left_columns, unified)
        ]
        plan: LogicalPlan
        if operation.op == "UNION":
            # Always a bag union; UNION-distinct is Distinct on top, so
            # downstream rules reason about one union shape only.
            plan = UnionOp([left, right], output, all=True)
            if not operation.all:
                plan = DistinctOp(plan)
        else:
            plan = SetDifferenceOp(left, right, operation.op, output, operation.all)

        if operation.order_by:
            keys: List[Tuple[ast.Expr, bool]] = []
            for item in operation.order_by:
                if isinstance(item.expr, ast.Literal) and item.expr.dtype == DataType.INTEGER:
                    ordinal = item.expr.value
                    if not 1 <= ordinal <= len(output):
                        raise BindError(f"ORDER BY position {ordinal} is out of range")
                    keys.append((plan.output_columns[ordinal - 1].ref(), item.ascending))
                elif isinstance(item.expr, ast.ColumnRef) and item.expr.table is None:
                    column = plan.column_by_name(item.expr.name)
                    keys.append((column.ref(), item.ascending))
                else:
                    raise BindError(
                        "ORDER BY on a set operation must reference output "
                        "columns by name or position"
                    )
            plan = SortOp(plan, keys)
        if operation.limit is not None or operation.offset:
            plan = LimitOp(plan, operation.limit, operation.offset or 0)
        return plan

    # -- expression binding ---------------------------------------------------------

    def _bind_expression(
        self,
        expr: ast.Expr,
        scope: Scope,
        allow_aggregates: bool = False,
        allow_windows: bool = False,
        _in_aggregate: bool = False,
    ) -> ast.Expr:
        bound = self._bind_rec(
            expr, scope, allow_aggregates, allow_windows, _in_aggregate
        )
        if not ast.contains_aggregate(bound):
            infer_type(bound)  # eager validation for early, precise errors
        return bound

    def _bind_rec(
        self,
        expr: ast.Expr,
        scope: Scope,
        allow_aggregates: bool,
        allow_windows: bool,
        in_aggregate: bool,
    ) -> ast.Expr:
        if isinstance(expr, ast.ColumnRef):
            return scope.resolve(expr.table, expr.name).ref()
        if isinstance(expr, (ast.Literal, ast.BoundRef)):
            return expr
        if isinstance(expr, ast.Star):
            raise BindError("* is only allowed in the select list")
        if isinstance(expr, (ast.InSubquery, ast.Exists)):
            raise BindError(
                "IN (SELECT ...) and EXISTS are only supported as top-level "
                "WHERE conjuncts"
            )
        if isinstance(expr, ast.WindowFunction):
            if not allow_windows:
                raise BindError(
                    "window functions are only allowed in the select list "
                    "and ORDER BY"
                )
            args = tuple(
                self._bind_rec(arg, scope, False, False, in_aggregate)
                for arg in expr.args
            )
            partition = tuple(
                self._bind_rec(p, scope, False, False, in_aggregate)
                for p in expr.partition_by
            )
            order = tuple(
                (self._bind_rec(key, scope, False, False, in_aggregate), asc)
                for key, asc in expr.order_by
            )
            return ast.WindowFunction(
                expr.name.upper(), args, partition, order, expr.star
            )
        if isinstance(expr, ast.FunctionCall):
            if is_aggregate_name(expr.name):
                if not allow_aggregates:
                    raise BindError(
                        f"aggregate {expr.name} is not allowed in this clause"
                    )
                if in_aggregate:
                    raise BindError("aggregate calls cannot be nested")
                args = tuple(
                    self._bind_rec(arg, scope, allow_aggregates, False, True)
                    for arg in expr.args
                )
                return ast.FunctionCall(expr.name, args, expr.distinct, expr.star)
            if not is_scalar_name(expr.name):
                raise BindError(f"unknown function: {expr.name}")
            args = tuple(
                self._bind_rec(arg, scope, allow_aggregates, allow_windows, in_aggregate)
                for arg in expr.args
            )
            return ast.FunctionCall(expr.name, args, expr.distinct, expr.star)
        children = ast.expression_children(expr)
        if not children:
            return expr
        rebuilt = [
            self._bind_rec(child, scope, allow_aggregates, allow_windows, in_aggregate)
            for child in children
        ]
        return _rebuild(expr, rebuilt)

    # -- helpers ---------------------------------------------------------------

    def _require_boolean(self, expr: ast.Expr, context: str) -> None:
        if ast.contains_aggregate(expr):
            return  # typed after aggregate rewriting
        dtype = infer_type(expr)
        if dtype not in (DataType.BOOLEAN, DataType.NULL):
            raise BindError(f"{context} must be BOOLEAN, got {dtype}")


# ---------------------------------------------------------------------------
# module helpers
# ---------------------------------------------------------------------------


def _plan_expression_refs(plan: LogicalPlan) -> Set[int]:
    """Every column id referenced by any expression anywhere in the plan."""
    refs: Set[int] = set()

    def collect(expr: Optional[ast.Expr]) -> None:
        if expr is not None:
            refs.update(c.column_id for c in ast.referenced_columns(expr))

    for node in plan.walk():
        if isinstance(node, FilterOp):
            collect(node.predicate)
        elif isinstance(node, ProjectOp):
            for expression in node.expressions:
                collect(expression)
        elif isinstance(node, JoinOp):
            collect(node.condition)
        elif isinstance(node, AggregateOp):
            for expression in node.group_expressions:
                collect(expression)
            for call in node.aggregates:
                collect(call.argument)
        elif isinstance(node, SortOp):
            for expression, _ in node.keys:
                collect(expression)
        elif isinstance(node, WindowOp):
            for spec in node.specs:
                collect(spec.argument)
                for expression in spec.partition_by:
                    collect(expression)
                for expression, _ in spec.order_keys:
                    collect(expression)
    return refs


def _derive_name(expr: ast.Expr, position: int) -> str:
    """Default output column name for an unaliased select item."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    return f"col{position}"


def _select_alias(select: ast.Select, index: int) -> Optional[str]:
    if 0 <= index < len(select.items):
        return select.items[index].alias
    return None


def _coerce_branch(plan: LogicalPlan, target_types: List[DataType]) -> LogicalPlan:
    """Wrap a set-operation branch in casts where its types merely widen."""
    columns = plan.output_columns
    if all(c.dtype == t or t == DataType.NULL for c, t in zip(columns, target_types)):
        if all(c.dtype == t for c, t in zip(columns, target_types)):
            return plan
    expressions: List[ast.Expr] = []
    new_columns: List[RelColumn] = []
    changed = False
    for column, target in zip(columns, target_types):
        if column.dtype == target:
            expressions.append(column.ref())
            new_columns.append(column.derive())
        else:
            expressions.append(ast.Cast(column.ref(), target))
            new_columns.append(RelColumn(column.name, target))
            changed = True
    if not changed:
        return plan
    return ProjectOp(plan, expressions, new_columns)


def _rebuild(expr: ast.Expr, children: List[ast.Expr]) -> ast.Expr:
    """Reassemble an expression node from rewritten children (same shapes as
    :func:`repro.sql.ast.expression_children`)."""
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, children[0], children[1])
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, children[0])
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name, tuple(children), expr.distinct, expr.star)
    if isinstance(expr, ast.Case):
        cursor = 0
        operand = None
        if expr.operand is not None:
            operand = children[cursor]
            cursor += 1
        whens = []
        for _ in expr.whens:
            whens.append((children[cursor], children[cursor + 1]))
            cursor += 2
        else_result = None
        if expr.else_result is not None:
            else_result = children[cursor]
        return ast.Case(operand, tuple(whens), else_result)
    if isinstance(expr, ast.Cast):
        return ast.Cast(children[0], expr.dtype)
    if isinstance(expr, ast.InList):
        return ast.InList(children[0], tuple(children[1:]), expr.negated)
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(children[0], expr.subquery, expr.negated)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(children[0], expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(children[0], children[1], children[2], expr.negated)
    return expr

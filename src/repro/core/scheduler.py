"""Parallel fragment scheduler: real concurrent exchange execution.

The 1989 GIS architecture assumes the mediator issues subqueries to many
autonomous sources *concurrently*; until this module existed the engine
drained exchanges one at a time and benchmarks merely simulated
parallelism. :class:`FragmentScheduler` makes it real: every independent
exchange fragment is fetched by its own worker thread, pages stream back
through bounded queues (pipelined — the consumer joins while producers are
still fetching), and a global plus per-source concurrency cap bounds the
fan-out.

Every source call runs inside a **robustness envelope**:

* **timeout** — a fragment that makes no progress for
  ``fragment_timeout_ms`` raises :class:`~repro.errors.SourceError` instead
  of hanging the query (the stuck worker is abandoned; threads are daemons);
* **retry with exponential backoff + jitter** (:class:`RetryPolicy`) —
  generalizes the old immediate before-first-page retry. A fragment is
  re-issued only while no page has reached the mediator, so a retry can
  never duplicate rows;
* **circuit breaker** (:class:`CircuitBreaker`) — consecutive failures trip
  a per-source breaker; further calls fail fast (or reroute to a registered
  replica via :func:`replica_fallback`) until a reset period elapses, after
  which a single half-open probe decides whether to close it again.

Sequential execution (``max_parallel_fragments=1`` and no timeout) never
constructs a scheduler and is byte-for-byte the old code path, so all
deterministic benchmarks keep their semantics. Parallel mode returns
bit-identical rows: each exchange's page order is preserved and operators
drain exchanges in the same order as before — only wall-clock time and the
interleaving of network charges change.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..errors import SourceError
from ..obs.trace import NULL_SPAN
from .fragments import Fragment
from .logical import ScanOp, transform_plan

Row = Tuple[Any, ...]

#: Pages buffered per fragment before its producer blocks (backpressure).
QUEUE_DEPTH_PAGES = 8

#: Poll interval for cancellation-aware blocking operations (seconds).
_POLL_S = 0.02

#: Real-time sleep hook; tests patch this to observe the backoff schedule.
_default_sleep = time.sleep


def sleep_ms(ms: float) -> None:
    """Sleep for a backoff delay (routed through the patchable hook)."""
    if ms > 0:
        _default_sleep(ms / 1000.0)


# ---------------------------------------------------------------------------
# query deadline
# ---------------------------------------------------------------------------


class Deadline:
    """A per-query wall-clock budget for cooperative cancellation.

    Created by the mediator when ``PlannerOptions.deadline_ms > 0`` and
    carried on the execution context through both the sequential path and
    the parallel scheduler. Nothing preempts: operators *check* the
    deadline at page boundaries, retry decisions refuse delays that cannot
    finish in budget, and queue waits are sliced so a consumer blocked on
    a slow producer still notices expiry promptly.

    The clock is injectable for tests; the budget is real milliseconds
    (the simulated network's virtual clock measures *cost*, not elapsed
    wall time, so deadlines bound the latter).
    """

    __slots__ = ("budget_ms", "_clock", "_start")

    def __init__(self, budget_ms: float, clock=time.monotonic) -> None:
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self._start = clock()

    def elapsed_ms(self) -> float:
        return (self._clock() - self._start) * 1000.0

    def remaining_ms(self) -> float:
        return self.budget_ms - self.elapsed_ms()

    def expired(self) -> bool:
        return self.remaining_ms() <= 0.0


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for fragment re-issues.

    ``retries`` is the attempt budget; the delay before the *n*-th retry is
    ``backoff_ms * multiplier**(n-1)`` capped at ``max_ms``, then spread
    uniformly over ``[base*(1-jitter), base*(1+jitter)]`` so simultaneous
    retries against a struggling source de-synchronize. ``backoff_ms=0``
    (the default) retries immediately — the pre-scheduler behavior.
    """

    retries: int = 0
    backoff_ms: float = 0.0
    multiplier: float = 2.0
    max_ms: float = 5000.0
    jitter: float = 0.0

    def base_delay_ms(self, attempt: int) -> float:
        """Deterministic delay before the ``attempt``-th retry (1-based)."""
        if self.backoff_ms <= 0:
            return 0.0
        return min(self.backoff_ms * self.multiplier ** (attempt - 1), self.max_ms)

    def delay_ms(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The jittered delay actually slept before the ``attempt``-th retry."""
        base = self.base_delay_ms(attempt)
        if base <= 0 or self.jitter <= 0:
            return base
        u = (rng or random).random()
        return base * (1.0 - self.jitter + 2.0 * self.jitter * u)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-source failure gate with the classic three-state machine.

    CLOSED counts consecutive failures; at ``failure_threshold`` it trips
    OPEN and every call fails fast. After ``reset_ms`` the breaker moves to
    HALF_OPEN and admits exactly one probe: success closes it, failure
    re-opens it (another trip). Thread-safe; breakers outlive individual
    queries so repeated failing queries accumulate toward the trip.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_ms: float = 30000.0,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = max(failure_threshold, 1)
        self.reset_ms = reset_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.trip_count = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN:
            elapsed_ms = (self._clock() - self._opened_at) * 1000.0
            if elapsed_ms >= self.reset_ms:
                self._state = HALF_OPEN
                self._probing = False

    def allow(self) -> bool:
        """May a call proceed right now? (HALF_OPEN admits a single probe.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probing = False

    def record_failure(self) -> bool:
        """Count one failure; returns True when it trips the breaker open."""
        with self._lock:
            self._maybe_half_open()
            self._consecutive_failures += 1
            tripping = self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            )
            if tripping:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False
                self.trip_count += 1
            return tripping

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (diagnostics/`\\health`)."""
        with self._lock:
            return self._consecutive_failures


class CircuitBreakerRegistry:
    """Per-source breakers, created lazily, shared by all of a mediator's
    queries (state must persist across queries for trips to mean anything)."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(
        self, source_name: str, failure_threshold: int, reset_ms: float
    ) -> CircuitBreaker:
        key = source_name.lower()
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(failure_threshold, reset_ms, self._clock)
                self._breakers[key] = breaker
            return breaker

    def get(self, source_name: str) -> Optional[CircuitBreaker]:
        with self._lock:
            return self._breakers.get(source_name.lower())

    def trip_count(self) -> int:
        with self._lock:
            return sum(b.trip_count for b in self._breakers.values())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Current state, trip count, and recent failure count of every
        known breaker."""
        with self._lock:
            breakers = dict(self._breakers)
        return {
            source: {
                "state": breaker.state,
                "trips": breaker.trip_count,
                "failures": breaker.consecutive_failures,
            }
            for source, breaker in sorted(breakers.items())
        }

    def remove(self, source_name: str) -> bool:
        """Forget one source's breaker (the source left the federation);
        True if there was one. A later re-register starts closed."""
        with self._lock:
            return self._breakers.pop(source_name.lower(), None) is not None

    def reset(self) -> None:
        """Forget all breaker state (e.g. after repairing a federation)."""
        with self._lock:
            self._breakers.clear()


# ---------------------------------------------------------------------------
# scheduler configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchedulerConfig:
    """Runtime knobs for one query's fragment execution."""

    max_parallel_fragments: int = 1
    max_parallel_per_source: int = 2
    fragment_timeout_ms: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 0
    breaker_reset_ms: float = 30000.0
    # -- tail tolerance (see repro.core.health) --
    adaptive_timeout: bool = False
    timeout_multiplier: float = 3.0
    timeout_floor_ms: float = 50.0
    timeout_ceiling_ms: float = 30000.0
    hedge: bool = False
    hedge_delay_ms: float = 50.0
    hedge_quantile: float = 0.95
    health_routing: bool = False

    @property
    def parallel(self) -> bool:
        return self.max_parallel_fragments > 1

    @property
    def scheduled(self) -> bool:
        """Does this configuration need worker threads at all? Timeouts
        require a producer thread even at concurrency 1, and hedging
        races two producer streams against each other."""
        return (
            self.parallel
            or self.fragment_timeout_ms > 0
            or self.adaptive_timeout
            or self.hedge
        )

    @staticmethod
    def from_options(options, fragment_retries: int) -> "SchedulerConfig":
        """Derive the runtime config from PlannerOptions + the mediator's
        retry budget."""
        return SchedulerConfig(
            max_parallel_fragments=options.max_parallel_fragments,
            max_parallel_per_source=options.max_parallel_per_source,
            fragment_timeout_ms=options.fragment_timeout_ms,
            retry=RetryPolicy(
                retries=max(fragment_retries, 0),
                backoff_ms=options.retry_backoff_ms,
                multiplier=options.retry_backoff_multiplier,
                max_ms=options.retry_backoff_max_ms,
                jitter=options.retry_jitter,
            ),
            breaker_threshold=options.breaker_failure_threshold,
            breaker_reset_ms=options.breaker_reset_ms,
            adaptive_timeout=options.adaptive_timeout,
            timeout_multiplier=options.timeout_multiplier,
            timeout_floor_ms=options.timeout_floor_ms,
            timeout_ceiling_ms=options.timeout_ceiling_ms,
            hedge=options.hedge_fragments,
            hedge_delay_ms=options.hedge_delay_ms,
            hedge_quantile=options.hedge_quantile,
            health_routing=options.health_routing,
        )


# ---------------------------------------------------------------------------
# replica fallback
# ---------------------------------------------------------------------------


def _retarget_candidates(fragment: Fragment):
    """Alternative sources a fragment could be served by, with its scans.

    Returns ``(scans, sorted_source_keys)``: the fragment's scan nodes and
    every source (other than the current one) on which *every* scan has a
    registered copy. Empty candidates means the fragment is pinned.
    """
    scans = [node for node in fragment.plan.walk() if isinstance(node, ScanOp)]
    if not scans:
        return scans, []
    current = fragment.source_name.lower()
    shared: Optional[Set[str]] = None
    for scan in scans:
        sources = {m.source.lower() for m in scan.table.all_mappings()} - {current}
        shared = sources if shared is None else shared & sources
    return scans, sorted(shared or ())


def _retarget(catalog, fragment: Fragment, scans, key: str):
    """Rebuild a fragment with every scan stamped onto source ``key``'s
    mapping (column identities are preserved, so the fragment's output
    layout is unchanged). Returns ``(source_name, adapter, fragment)``.
    """
    chosen: Dict[int, Any] = {}
    for scan in scans:
        chosen[id(scan)] = next(
            m for m in scan.table.all_mappings() if m.source.lower() == key
        )

    def remap(node):
        if isinstance(node, ScanOp) and id(node) in chosen:
            return ScanOp(
                node.table, node.binding_name, node.columns,
                mapping=chosen[id(node)],
            )
        return None

    plan = transform_plan(fragment.plan, remap)
    display = chosen[id(scans[0])].source
    return display, catalog.source(display), Fragment(display, plan)


def replica_fallback(catalog, fragment: Fragment, breakers):
    """Re-target a fragment at a replica site when its source's breaker is
    open.

    Succeeds only when *every* scan in the fragment has a registered copy on
    one common alternative source whose breaker (if any) admits calls; the
    plan is rebuilt with each scan stamped onto that source's mapping.
    Returns ``(source_name, adapter, fragment)`` or None.

    The fallback assumes the replica's capability envelope covers the
    fragment (true for same-kind replicas, the normal case); a weaker
    replica rejects the fragment with a CapabilityError, which surfaces
    like any other source failure.
    """
    scans, candidates = _retarget_candidates(fragment)
    for key in candidates:
        breaker = breakers.get(key) if breakers is not None else None
        if breaker is not None and not breaker.allow():
            continue
        return _retarget(catalog, fragment, scans, key)
    return None


def hedge_target(catalog, fragment: Fragment, breakers, health):
    """Pick the replica a hedged duplicate fetch should race against.

    Candidates are the fragment's common alternative sources whose
    breakers admit calls, ranked by health score (lower = healthier;
    unknown sources rank last, in name order, so a cold federation still
    hedges deterministically). Returns ``(source_name, adapter,
    fragment)`` or None when the fragment has nowhere else to go.
    """
    scans, candidates = _retarget_candidates(fragment)
    admitted = []
    for key in candidates:
        breaker = breakers.get(key) if breakers is not None else None
        if breaker is not None and not breaker.allow():
            continue
        admitted.append(key)
    if not admitted:
        return None
    if health is not None:
        admitted.sort(
            key=lambda key: (
                (0, score) if (score := health.score(key)) is not None
                else (1, 0.0)
            )
        )
    return _retarget(catalog, fragment, scans, admitted[0])


#: A replica must beat the primary's health score by this factor before a
#: dispatch is proactively rerouted (hysteresis against route flapping).
HEALTH_ROUTE_MARGIN = 1.25


def health_route(catalog, fragment: Fragment, breakers, health):
    """Proactively re-target a fragment at its healthiest serving source.

    Consulted at dispatch when ``health_routing`` is armed: if a replica's
    health score beats the primary's by :data:`HEALTH_ROUTE_MARGIN`, the
    fragment is dispatched there instead of waiting for the primary's
    breaker to open. Unknown scores (cold sources) never trigger a
    reroute — reactive fallback still covers them. Returns
    ``(source_name, adapter, fragment)`` or None to keep the primary.
    """
    if health is None:
        return None
    primary_score = health.score(fragment.source_name)
    if primary_score is None:
        return None
    scans, candidates = _retarget_candidates(fragment)
    best = None
    for key in candidates:
        breaker = breakers.get(key) if breakers is not None else None
        if breaker is not None and not breaker.allow():
            continue
        score = health.score(key)
        if score is None:
            continue
        if best is None or score < best[0]:
            best = (score, key)
    if best is None or best[0] * HEALTH_ROUTE_MARGIN >= primary_score:
        return None
    return _retarget(catalog, fragment, scans, best[1])


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------


class _FragmentTask:
    """One in-flight fragment fetch: its producer thread and page queue."""

    __slots__ = (
        "index", "adapter", "fragment", "page_rows", "sizer", "queue",
        "cancelled", "done", "virtual_ms", "thread", "span", "hedge",
    )

    def __init__(
        self,
        index: int,
        adapter,
        fragment: Fragment,
        page_rows: int,
        sizer=None,
        hedge: bool = False,
    ):
        self.index = index
        self.adapter = adapter
        self.fragment = fragment
        self.page_rows = page_rows
        self.sizer = sizer
        self.queue: "queue.Queue" = queue.Queue(maxsize=QUEUE_DEPTH_PAGES)
        self.cancelled = False
        self.done = False
        self.virtual_ms = 0.0
        self.thread: Optional[threading.Thread] = None
        #: A hedged duplicate fetch racing a straggling primary; its
        #: traffic is charged normally but also tallied under hedges_*.
        self.hedge = hedge
        # Trace span for this fetch; the producer thread opens it (under
        # the parent captured from the submitting thread's context) and the
        # consumer may close it on timeout — Span.end is race-safe.
        self.span = NULL_SPAN

    def put(self, item, stop: threading.Event) -> bool:
        """Enqueue one item, giving up if the task or query is cancelled."""
        while not (stop.is_set() or self.cancelled):
            try:
                self.queue.put(item, timeout=_POLL_S)
                return True
            except queue.Full:
                continue
        return False


class FragmentScheduler:
    """Runs fragment fetches on daemon worker threads with bounded queues.

    One scheduler serves one query. ``prestart`` launches every independent
    exchange before iteration begins, so by the time the root operator pulls
    its first row all sources are transferring concurrently. Consumers
    (:class:`~repro.core.physical.ExchangeExec` in async-pull mode, and
    bind-join batch fetches) drain their fragment's queue in order, which
    preserves the exact row order of sequential execution.

    Producers are capped twice: ``max_parallel_fragments`` globally and
    ``max_parallel_per_source`` per component system (autonomous sources
    ration their own admission; the mediator must not stampede one site).
    Worker threads are daemons and are *abandoned*, not joined, when a
    fragment times out — the only safe option against a hung source.
    """

    def __init__(
        self,
        config: SchedulerConfig,
        breakers: Optional[CircuitBreakerRegistry],
        catalog,
        clock=time.monotonic,
    ) -> None:
        self._config = config
        self._breakers = breakers
        self._catalog = catalog
        self._clock = clock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._global_slots = threading.Semaphore(max(config.max_parallel_fragments, 1))
        self._source_slots: Dict[str, threading.Semaphore] = {}
        self._by_exchange: Dict[int, _FragmentTask] = {}
        self._tasks: List[_FragmentTask] = []
        self._in_flight = 0
        self.peak_in_flight = 0

    # -- submission ---------------------------------------------------------

    def prestart(self, exchanges, ctx) -> None:
        """Launch every independent exchange's fetch before iteration."""
        for exchange in exchanges:
            if id(exchange) not in self._by_exchange:
                ctx.add_metric("fragments_executed", 1)
                self._by_exchange[id(exchange)] = self.submit_fragment(
                    exchange.adapter, exchange.fragment, exchange.page_rows,
                    ctx, sizer=getattr(exchange, "_sizer", None),
                )

    def was_prestarted(self, exchange) -> bool:
        """Is a producer already fetching this exchange's fragment?
        (The fragment cache must not replay an entry whose fetch is
        in flight — the worker is charging the network regardless.)"""
        return id(exchange) in self._by_exchange

    def stream_exchange_pages(self, exchange, ctx) -> Iterator[List[Row]]:
        """Async-pull entry point for ExchangeExec: response pages in
        production order."""
        task = self._by_exchange.get(id(exchange))
        if task is None:
            ctx.add_metric("fragments_executed", 1)
            task = self.submit_fragment(
                exchange.adapter, exchange.fragment, exchange.page_rows,
                ctx, sizer=getattr(exchange, "_sizer", None),
            )
            self._by_exchange[id(exchange)] = task
        return self.stream_pages(task, ctx)

    def stream_exchange(self, exchange, ctx) -> Iterator[Row]:
        """Row-granular compatibility wrapper over
        :meth:`stream_exchange_pages`."""
        for page in self.stream_exchange_pages(exchange, ctx):
            yield from page

    def submit_fragment(
        self, adapter, fragment: Fragment, page_rows: int, ctx, sizer=None,
        hedge: bool = False,
    ) -> _FragmentTask:
        """Start fetching one fragment in the background; returns its task."""
        with self._lock:
            index = len(self._tasks)
            task = _FragmentTask(
                index, adapter, fragment, max(page_rows, 1), sizer,
                hedge=hedge,
            )
            self._tasks.append(task)
        thread = threading.Thread(
            target=self._produce,
            args=(task, ctx),
            name=f"gis-fragment-{index}-{fragment.source_name}",
            daemon=True,
        )
        task.thread = thread
        thread.start()
        return task

    # -- consumption --------------------------------------------------------

    def stream_pages(self, task: _FragmentTask, ctx) -> Iterator[List[Row]]:
        """Yield the fragment's response pages in production order,
        enforcing the no-progress timeout while waiting. Pages are handed
        through exactly as the producer queued them (never re-chunked), so
        the consumer sees the same page boundaries the network was charged
        for. When the query carries a deadline the wait is sliced so
        expiry is noticed promptly even with no fragment timeout set.

        With hedging armed, the wait for the fragment's *first* page runs
        through :meth:`_stream_hedged`, which may race a duplicate fetch
        on a replica against a straggling primary."""
        timeout_ms = self._timeout_ms_for(task.fragment.source_name, ctx)
        deadline: Optional[Deadline] = getattr(ctx, "deadline", None)
        if self._config.hedge and not task.hedge:
            yield from self._stream_hedged(task, ctx, timeout_ms, deadline)
        else:
            yield from self._stream_plain(task, ctx, timeout_ms, deadline)

    def _timeout_ms_for(self, source: str, ctx) -> float:
        """The no-progress budget for one source: the adaptive
        quantile-derived value when armed and warm, else the static
        ``fragment_timeout_ms`` (the cold-start fallback)."""
        config = self._config
        static = config.fragment_timeout_ms
        if not config.adaptive_timeout:
            return static
        health = getattr(ctx, "health", None)
        if health is None:
            return static
        adaptive = health.adaptive_timeout_ms(
            source,
            config.timeout_multiplier,
            config.timeout_floor_ms,
            config.timeout_ceiling_ms,
        )
        return static if adaptive is None else adaptive

    def _stream_plain(
        self,
        task: _FragmentTask,
        ctx,
        timeout_ms: float,
        deadline: "Optional[Deadline]",
    ) -> Iterator[List[Row]]:
        timeout_s = timeout_ms / 1000.0 if timeout_ms > 0 else None
        while True:
            if task.queue.empty() and not task.done:
                ctx.add_metric("scheduler_stalls", 1)
            try:
                kind, payload = self._next_item(task, ctx, timeout_s, deadline)
            except queue.Empty:
                self._fail_no_progress(task, None, ctx, timeout_ms)
            if kind == "rows":
                yield payload
            elif kind == "end":
                return
            else:  # "error"
                raise payload

    def _fail_no_progress(
        self,
        task: _FragmentTask,
        hedge: "Optional[_FragmentTask]",
        ctx,
        timeout_ms: float,
    ) -> None:
        """Cancel a fragment (and any in-flight hedge) that made no
        progress for its budget and raise the attributed SourceError."""
        task.cancelled = True
        if hedge is not None:
            hedge.cancelled = True
        source = task.fragment.source_name
        breaker = ctx.breaker_for(source)
        if breaker is not None and breaker.record_failure():
            ctx.add_metric("breaker_trips", 1)
        health = getattr(ctx, "health", None)
        if health is not None:
            health.record_error(source)
        # Close the abandoned producer's span from here — its own
        # thread is hung and will never end it.
        task.span.event("timeout", timeout_ms=timeout_ms)
        task.span.set_attribute("timeout", True)
        task.span.end()
        raise SourceError(
            source,
            f"fragment made no progress for {timeout_ms:.0f} ms "
            "(timeout; source may be hung)",
        )

    # -- hedged consumption -------------------------------------------------

    def _hedge_delay_ms(self, source: str, ctx) -> float:
        config = self._config
        health = getattr(ctx, "health", None)
        if health is None:
            return config.hedge_delay_ms
        return health.hedge_delay_ms(
            source, config.hedge_quantile, config.hedge_delay_ms
        )

    def _launch_hedge(
        self, primary: _FragmentTask, ctx
    ) -> "Optional[_FragmentTask]":
        """Start the duplicate fetch on the healthiest admitted replica."""
        target = hedge_target(
            self._catalog, primary.fragment, self._breakers,
            getattr(ctx, "health", None),
        )
        if target is None:
            return None
        source, adapter, fragment = target
        ctx.add_metric("hedges_launched", 1)
        ctx.trace_span.event(
            "hedge-launched",
            primary=primary.fragment.source_name, replica=source,
        )
        return self.submit_fragment(
            adapter, fragment, primary.page_rows, ctx,
            sizer=primary.sizer, hedge=True,
        )

    def _stream_hedged(
        self,
        primary: _FragmentTask,
        ctx,
        timeout_ms: float,
        deadline: "Optional[Deadline]",
    ) -> Iterator[List[Row]]:
        """Race the primary fetch against a late-launched replica hedge.

        The race covers only the *first* item: once either stream
        produces a page (or finishes), that task is the winner, the loser
        is cooperatively cancelled, and consumption continues on the
        winner alone. Hedging therefore never mixes pages from two
        streams — the winner's stream is consumed end to end, which is
        what keeps hedged rows bit-identical to unhedged execution. A
        primary that produces before the hedge delay elapses commits the
        race immediately and no hedge is launched.
        """
        source = primary.fragment.source_name
        health = getattr(ctx, "health", None)
        delay_ms = self._hedge_delay_ms(source, ctx)
        started = self._clock()
        hedge: "Optional[_FragmentTask]" = None
        no_target = False
        winner: "Optional[_FragmentTask]" = None
        first = None
        failures: List[Tuple[_FragmentTask, BaseException]] = []
        while winner is None:
            if deadline is not None and deadline.remaining_ms() <= 0:
                primary.cancelled = True
                if hedge is not None:
                    hedge.cancelled = True
                primary.span.event("deadline", budget_ms=deadline.budget_ms)
                raise ctx.deadline_error(source)
            waited_ms = (self._clock() - started) * 1000.0
            if timeout_ms > 0 and waited_ms >= timeout_ms:
                self._fail_no_progress(primary, hedge, ctx, timeout_ms)
            if hedge is None and not no_target and waited_ms >= delay_ms:
                hedge = self._launch_hedge(primary, ctx)
                no_target = hedge is None
            contenders = [
                t for t in (primary, hedge)
                if t is not None and all(f is not t for f, _ in failures)
            ]
            if not contenders:
                # Both streams failed terminally (their envelopes already
                # retried and fell back); attribute to the primary.
                for failed, error in failures:
                    if failed is primary:
                        raise error
                raise failures[0][1]
            item = None
            holder = None
            for contender in contenders:
                try:
                    item = contender.queue.get_nowait()
                    holder = contender
                    break
                except queue.Empty:
                    continue
            if item is None:
                ctx.add_metric("scheduler_stalls", 1)
                # Bounded block so hedge launch, timeout, and deadline
                # all stay prompt (the same poll granularity the
                # producers use for cancellation).
                slice_s = _POLL_S
                if hedge is None and not no_target:
                    slice_s = max(
                        min(slice_s, (delay_ms - waited_ms) / 1000.0), 0.001
                    )
                try:
                    item = contenders[0].queue.get(timeout=slice_s)
                    holder = contenders[0]
                except queue.Empty:
                    continue
            kind, payload = item
            if kind == "error":
                failures.append((holder, payload))
                continue
            winner, first = holder, item
        loser = hedge if winner is primary else primary
        if loser is not None:
            loser.cancelled = True
            ctx.add_metric("hedges_cancelled", 1)
        if hedge is not None:
            hedge_won = winner is hedge
            if health is not None:
                health.record_hedge(source, won=hedge_won)
            if hedge_won:
                ctx.add_metric("hedges_won", 1)
                ctx.trace_span.event(
                    "hedge-won",
                    replica=winner.fragment.source_name, primary=source,
                )
        kind, payload = first
        if kind == "rows":
            yield payload
        elif kind == "end":
            return
        yield from self._stream_plain(winner, ctx, timeout_ms, deadline)

    def _next_item(
        self,
        task: _FragmentTask,
        ctx,
        timeout_s: Optional[float],
        deadline: "Optional[Deadline]",
    ):
        """One blocking queue wait, honoring both the fragment's
        no-progress timeout (raises ``queue.Empty`` to the caller) and
        the query deadline (cancels the task and raises
        :class:`QueryTimeoutError`). Without a deadline this is a single
        ``Queue.get`` — the exact pre-deadline behavior."""
        if deadline is None:
            return task.queue.get(timeout=timeout_s)
        wait_started = self._clock()
        while True:
            remaining_deadline_s = deadline.remaining_ms() / 1000.0
            if remaining_deadline_s <= 0:
                task.cancelled = True
                source = task.fragment.source_name
                task.span.event("deadline", budget_ms=deadline.budget_ms)
                raise ctx.deadline_error(source)
            slice_s = remaining_deadline_s
            if timeout_s is not None:
                waited_s = self._clock() - wait_started
                remaining_timeout_s = timeout_s - waited_s
                if remaining_timeout_s <= 0:
                    raise queue.Empty
                slice_s = min(slice_s, remaining_timeout_s)
            try:
                return task.queue.get(timeout=slice_s)
            except queue.Empty:
                if timeout_s is not None and (
                    self._clock() - wait_started
                ) >= timeout_s:
                    raise
                continue

    def stream(self, task: _FragmentTask, ctx) -> Iterator[Row]:
        """Row-granular compatibility wrapper over :meth:`stream_pages`."""
        for page in self.stream_pages(task, ctx):
            yield from page

    # -- shutdown -----------------------------------------------------------

    def close(self, ctx) -> None:
        """Cancel producers, unblock any stuck on full queues, and publish
        scheduler statistics into the query's metrics."""
        self._stop.set()
        for task in self._tasks:
            task.cancelled = True
            while True:
                try:
                    task.queue.get_nowait()
                except queue.Empty:
                    break
        # Realized virtual-clock critical path: greedy list scheduling of
        # the fragments (in submission order) over the configured number of
        # lanes — the simulated elapsed time of the schedule actually taken,
        # as opposed to the per-source max, which assumes unbounded fan-out.
        lanes = [0.0] * max(self._config.max_parallel_fragments, 1)
        for task in self._tasks:
            slot = lanes.index(min(lanes))
            lanes[slot] += task.virtual_ms
        ctx.set_metric("parallel_ms", max(lanes) if self._tasks else 0.0)
        ctx.set_metric("fragments_in_flight_peak", self.peak_in_flight)

    # -- producer side ------------------------------------------------------

    def _source_slot(self, source_name: str) -> threading.Semaphore:
        key = source_name.lower()
        with self._lock:
            slot = self._source_slots.get(key)
            if slot is None:
                slot = threading.Semaphore(max(self._config.max_parallel_per_source, 1))
                self._source_slots[key] = slot
            return slot

    def _acquire(self, semaphore: threading.Semaphore, task: _FragmentTask) -> bool:
        while not (self._stop.is_set() or task.cancelled):
            if semaphore.acquire(timeout=_POLL_S):
                return True
        return False

    def _produce(self, task: _FragmentTask, ctx) -> None:
        # A hedge must run while the straggling primary still holds its
        # worker slot — under the global cap, max_parallel_fragments=1
        # would quietly disable hedging. Hedge concurrency is bounded by
        # the number of in-flight races (at most one per consumer), so
        # bypassing the cap cannot stampede the pool; per-source
        # admission still applies inside the envelope.
        if not task.hedge and not self._acquire(self._global_slots, task):
            return
        try:
            with self._lock:
                self._in_flight += 1
                self.peak_in_flight = max(self.peak_in_flight, self._in_flight)
            self._run_envelope(task, ctx)
        finally:
            with self._lock:
                self._in_flight -= 1
            if not task.hedge:
                self._global_slots.release()

    def _run_envelope(self, task: _FragmentTask, ctx) -> None:
        """Execute one fragment inside the robustness envelope.

        The trace span is opened here, on the worker thread, under the
        parent captured from the submitting query's context
        (``ctx.trace_span``) — explicit cross-thread context propagation.
        It is also activated thread-locally so any nested instrumentation
        on this worker parents correctly.
        """
        config = self._config
        adapter, fragment = task.adapter, task.fragment
        source = fragment.source_name
        if config.health_routing and not task.hedge:
            routed = health_route(
                self._catalog, fragment, self._breakers,
                getattr(ctx, "health", None),
            )
            if routed is not None:
                ctx.trace_span.event(
                    "health-route", primary=source, replica=routed[0],
                )
                source, adapter, fragment = routed
                task.fragment = fragment
                ctx.add_metric("health_reroutes", 1)
        rng = random.Random(f"{source}:{task.index}")
        attempt = 0
        span = ctx.trace_child(
            f"fragment:{source}", "fragment",
            source=source, mode="parallel", worker=task.index,
        )
        if task.hedge:
            span.set_attribute("hedge", True)
        task.span = span
        with ctx.tracer.activate(span):
            try:
                self._envelope_loop(
                    task, ctx, adapter, fragment, source, rng, attempt, config,
                    span,
                )
            finally:
                span.end()

    def _envelope_loop(
        self, task, ctx, adapter, fragment, source, rng, attempt, config, span
    ) -> None:
        deadline: Optional[Deadline] = getattr(ctx, "deadline", None)
        health = getattr(ctx, "health", None)
        while not (self._stop.is_set() or task.cancelled):
            if deadline is not None and deadline.expired():
                # Unblock the consumer promptly rather than going silent.
                task.done = True
                span.event("deadline", budget_ms=deadline.budget_ms)
                task.put(("error", ctx.deadline_error(source)), self._stop)
                return
            breaker = ctx.breaker_for(source)
            if breaker is not None and not breaker.allow():
                fallback = replica_fallback(self._catalog, fragment, self._breakers)
                if fallback is None:
                    task.done = True
                    span.set_attribute("error", "circuit breaker open")
                    task.put(
                        ("error", SourceError(
                            source,
                            "circuit breaker open; no healthy replica "
                            "registered (failing fast)",
                        )),
                        self._stop,
                    )
                    return
                source, adapter, fragment = fallback
                ctx.add_metric("breaker_fallbacks", 1)
                span.event("replica-fallback", source=source)
                span.set_attribute("source", source)
                continue  # re-evaluate the replica's own breaker
            slot = self._source_slot(source)
            if not self._acquire(slot, task):
                return
            produced = False
            try:
                # The adapter's page contract: zero or more full pages, then
                # exactly one final partial (possibly empty) page. Every page
                # — including the trailing empty one that says "result
                # complete" — costs one response message on the wire.
                page_started = self._clock()
                for page in ctx.execute_pages(adapter, fragment, task.page_rows):
                    if health is not None:
                        now = self._clock()
                        health.observe_latency(
                            source, (now - page_started) * 1000.0
                        )
                    if self._stop.is_set() or task.cancelled:
                        return
                    task.virtual_ms += ctx.charge_transfer(
                        source, page, 1, task.sizer
                    )
                    if task.hedge:
                        ctx.add_metric("hedges_rows_shipped", len(page))
                        if task.sizer is not None:
                            ctx.add_metric(
                                "hedges_bytes_shipped", task.sizer(page)
                            )
                    span.event("page", rows=len(page))
                    if page:
                        if not task.put(("rows", page), self._stop):
                            return
                        produced = True
                    # Restart the fetch clock after the (possibly blocking)
                    # queue hand-off, so consumer backpressure is never
                    # charged to the source's latency profile.
                    page_started = self._clock()
            except SourceError as exc:
                if health is not None:
                    health.record_error(source)
                if breaker is not None and breaker.record_failure():
                    ctx.add_metric("breaker_trips", 1)
                    span.event("breaker-trip", source=source)
                retryable = getattr(exc, "retryable", True)
                if produced or not retryable or attempt >= config.retry.retries:
                    task.done = True
                    span.set_attribute("error", repr(exc))
                    if not retryable:
                        span.set_attribute("permanent", True)
                    task.put(("error", exc), self._stop)
                    return
                attempt += 1
                delay = config.retry.delay_ms(attempt, rng)
                if deadline is not None and deadline.remaining_ms() <= delay:
                    # A retry that cannot finish inside the budget is not
                    # issued; the source failure stands as-is.
                    task.done = True
                    span.event(
                        "retry-abandoned", attempt=attempt,
                        delay_ms=round(delay, 3),
                        remaining_ms=round(deadline.remaining_ms(), 3),
                    )
                    span.set_attribute("error", repr(exc))
                    task.put(("error", exc), self._stop)
                    return
                ctx.add_metric("fragment_retries", 1)
                span.event("retry", attempt=attempt, delay_ms=round(delay, 3))
                sleep_ms(delay)
                continue
            except BaseException as exc:  # surface planner/adapter bugs
                task.done = True
                span.set_attribute("error", repr(exc))
                task.put(("error", exc), self._stop)
                return
            finally:
                slot.release()
            if breaker is not None:
                breaker.record_success()
            if health is not None:
                health.record_success(source)
            task.done = True
            task.put(("end", None), self._stop)
            return

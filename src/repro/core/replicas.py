"""Replica (site) selection.

When a base table is registered on several sources, the planner must pick
which copy each scan reads — the classic *site selection* step of
distributed query processing. The chooser runs after the rewriter (so
filters sit directly on scans) and prices each candidate copy as the
simulated transfer of the rows that copy would have to ship:

* rows = the filtered estimate when the candidate source's envelope can
  absorb the predicate above the scan, else the full table;
* cost = that row volume over the candidate's link, paged by the
  candidate's ``page_rows``.

The scan's :attr:`~repro.core.logical.ScanOp.mapping` is stamped with the
winner; everything downstream (pushdown, wrappers) reads
``effective_mapping`` and needs no further changes.
"""

from __future__ import annotations

from typing import List, Optional

from ..catalog.catalog import Catalog
from ..catalog.mappings import TableMapping
from ..sql import ast
from .cardinality import Estimator
from .cost import CostModel
from .logical import FilterOp, LogicalPlan, ScanOp, transform_plan
from .pushdown import _expression_supported


class ReplicaSelector:
    """Stamps every multi-copy scan with its cheapest replica."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: Estimator,
        cost_model: CostModel,
    ) -> None:
        self._catalog = catalog
        self._estimator = estimator
        self._cost = cost_model
        self.decisions: List[str] = []

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        self.decisions = []

        def visit(node: LogicalPlan) -> Optional[LogicalPlan]:
            if isinstance(node, ScanOp):
                return self._choose(node, predicate=None)
            if isinstance(node, FilterOp) and isinstance(node.child, ScanOp):
                chosen = self._choose(node.child, predicate=node.predicate)
                if chosen is None:
                    return None
                return FilterOp(chosen, node.predicate)
            return None

        return transform_plan(plan, visit)

    def _choose(
        self, scan: ScanOp, predicate: Optional[ast.Expr]
    ) -> Optional[ScanOp]:
        mappings = scan.table.all_mappings()
        if len(mappings) < 2:
            return None
        table_rows = max(self._estimator.estimate_rows(scan), 1.0)
        width = self._estimator.estimate_width(scan.columns)
        selectivity = 1.0
        if predicate is not None:
            selectivity = self._estimator.selectivity(predicate, table_rows)

        best: Optional[TableMapping] = None
        best_cost = float("inf")
        for mapping in mappings:
            caps = self._catalog.source(mapping.source).capabilities()
            absorbs = (
                predicate is not None
                and caps.filters
                and _expression_supported(predicate, caps)
            )
            rows = table_rows * selectivity if absorbs else table_rows
            cost = self._cost.transfer_bytes(
                mapping.source, rows, rows * width, caps.page_rows
            ).total_ms
            if cost < best_cost:
                best, best_cost = mapping, cost
        assert best is not None
        self.decisions.append(
            f"{scan.table.name}: chose {best.source} "
            f"({best_cost:.1f}ms estimated transfer)"
        )
        if best is scan.effective_mapping:
            return None
        return ScanOp(scan.table, scan.binding_name, scan.columns, mapping=best)
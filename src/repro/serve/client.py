"""A small blocking client for the query service.

Used by the REPL's client mode, the serving tests, and the benchmarks.
One :class:`ServeClient` is one TCP connection and therefore one session;
it is not thread-safe — give each worker thread its own client (that is
the tenancy model anyway). Wire errors come back as the same typed
exceptions a local mediator caller would see (see
:func:`repro.serve.protocol.decode_error`).
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import ProtocolError
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_error,
    decode_message,
    decode_row,
    encode_message,
)


class RemoteResult:
    """A query result decoded from the wire.

    Rows are tuples (as from ``Mediator.query()``); ``complete`` /
    ``excluded_sources`` carry the partial-result contract across, and
    ``metrics`` is the server's metric summary dict.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.column_names: List[str] = list(payload.get("columns", []))
        self.rows: List[Tuple[Any, ...]] = [
            decode_row(row) for row in payload.get("rows", [])
        ]
        self.row_count: int = int(payload.get("row_count", len(self.rows)))
        self.complete: bool = bool(payload.get("complete", True))
        self.excluded_sources: Dict[str, str] = dict(
            payload.get("excluded_sources", {})
        )
        self.metrics: Dict[str, Any] = dict(payload.get("metrics", {}))

    def __len__(self) -> int:
        return len(self.rows)


class ServeClient:
    """Blocking JSON-lines client: connect, handshake, request/response."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        token: Optional[str] = None,
        timeout: Optional[float] = 60.0,
    ) -> None:
        self.tenant = tenant
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        self.session_id: Optional[int] = None
        hello: Dict[str, Any] = {
            "op": "hello",
            "tenant": tenant,
            "version": PROTOCOL_VERSION,
        }
        if token is not None:
            hello["token"] = token
        response = self._call(hello)
        self.session_id = response.get("session")

    # -- plumbing ----------------------------------------------------------

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and read its response; raise typed errors."""
        request = {"id": next(self._ids), **request}
        self._sock.sendall(encode_message(request))
        line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ProtocolError("server closed the connection")
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("response line too long")
        response = decode_message(line)
        if response.get("id") != request["id"]:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request['id']!r}"
            )
        if not response.get("ok", False):
            error = response.get("error")
            if isinstance(error, dict):
                raise decode_error(error)
            raise ProtocolError(f"server error without payload: {response!r}")
        return response

    # -- operations --------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def query(self, sql: str, **knobs: Any) -> RemoteResult:
        """Synchronous execution (admission + run + full result)."""
        return RemoteResult(self._call({"op": "query", "sql": sql, **knobs}))

    def submit(self, sql: str, **knobs: Any) -> str:
        """Asynchronous submission; returns the query id to poll."""
        response = self._call({"op": "submit", "sql": sql, **knobs})
        return response["query_id"]

    def status(self, query_id: str) -> Dict[str, Any]:
        return self._call({"op": "status", "query_id": query_id})

    def fetch(
        self, query_id: str, offset: int = 0, limit: int = 1024
    ) -> Dict[str, Any]:
        """One page of a finished query (``ready`` False while running)."""
        response = self._call(
            {"op": "fetch", "query_id": query_id, "offset": offset,
             "limit": limit}
        )
        if response.get("ready"):
            response["page"] = [decode_row(row) for row in response["rows"]]
        return response

    def fetch_all(
        self, query_id: str, page_size: int = 1024,
        poll_interval: float = 0.01, timeout: float = 60.0,
    ) -> RemoteResult:
        """Poll until done, then page the whole result down."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            response = self._call(
                {"op": "fetch", "query_id": query_id, "offset": 0,
                 "limit": page_size}
            )
            if response.get("ready"):
                break
            if time.monotonic() > deadline:
                raise ProtocolError(
                    f"query {query_id} did not finish within {timeout}s"
                )
            time.sleep(poll_interval)
        result = RemoteResult(response)
        offset = len(result.rows)
        while offset < result.row_count:
            page = self._call(
                {"op": "fetch", "query_id": query_id, "offset": offset,
                 "limit": page_size}
            )
            rows = [decode_row(row) for row in page["rows"]]
            if not rows:
                break
            result.rows.extend(rows)
            offset += len(rows)
        return result

    def iter_pages(
        self, query_id: str, page_size: int = 1024
    ) -> Iterator[List[Tuple[Any, ...]]]:
        """Page a *finished* query's rows (raises if still running)."""
        offset = 0
        while True:
            response = self._call(
                {"op": "fetch", "query_id": query_id, "offset": offset,
                 "limit": page_size}
            )
            if not response.get("ready"):
                raise ProtocolError(f"query {query_id} is not finished")
            rows = [decode_row(row) for row in response["rows"]]
            if rows:
                yield rows
            if response.get("eof") or not rows:
                return
            offset += len(rows)

    def set_defaults(self, **knobs: Any) -> Dict[str, Any]:
        """Set session-scoped execution defaults (deadline/partial/trace)."""
        return self._call({"op": "set", "defaults": knobs}).get("defaults", {})

    def stats(self) -> Dict[str, Any]:
        return self._call({"op": "stats"})

    def catalog(self) -> Dict[str, Any]:
        """The server's live catalog status (sources, tables with their
        versions, materialized views, journal position)."""
        return self._call({"op": "catalog"}).get("catalog", {})

    def close(self) -> None:
        try:
            self._sock.sendall(encode_message({"op": "close"}))
        except OSError:
            pass
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

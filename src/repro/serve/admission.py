"""Admission control and fair scheduling for the query service.

Two invariants, enforced here and nowhere else:

1. **Bounded queues.** Every tenant has a fixed admission-queue limit; a
   request arriving past it is rejected *synchronously* with
   :class:`~repro.errors.ServerOverloadedError` (retryable backpressure).
   The server never buffers unboundedly on a client's behalf.
2. **Fair draining.** Dispatch rotates round-robin across tenants with
   pending work, each capped at its own concurrency quota — a tenant
   flooding its queue can saturate *its* quota, but the next tenant in
   the rotation still dispatches on every pump.

The scheduler is confined to the asyncio event-loop thread: every public
method must be called from the loop, so no internal locking is needed.
The actual query work runs on a bounded ``ThreadPoolExecutor`` (the
mediator call is blocking); results come back to the loop as futures.
"""

from __future__ import annotations

import asyncio
import functools
import time
from collections import deque
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from ..errors import ServerError, ServerOverloadedError

DEFAULT_MAX_CONCURRENT = 2
DEFAULT_MAX_QUEUED = 16


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_concurrent`` — executor slots the tenant may hold at once;
    ``max_queued`` — admitted-but-undispatched requests beyond which new
    arrivals bounce with backpressure.
    """

    max_concurrent: int = DEFAULT_MAX_CONCURRENT
    max_queued: int = DEFAULT_MAX_QUEUED

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")


@dataclass
class AdmissionStats:
    """One tenant's admission counters (snapshot; plain data)."""

    tenant: str
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    queued: int = 0
    running: int = 0
    queue_wait_ms_total: float = 0.0
    queue_wait_ms_max: float = 0.0

    @property
    def queue_wait_ms_avg(self) -> float:
        dispatched = self.completed + self.failed + self.running
        return self.queue_wait_ms_total / dispatched if dispatched else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "queued": self.queued,
            "running": self.running,
            "queue_wait_ms_avg": round(self.queue_wait_ms_avg, 3),
            "queue_wait_ms_max": round(self.queue_wait_ms_max, 3),
        }


class _TenantState:
    __slots__ = ("quota", "queue", "running", "stats")

    def __init__(self, tenant: str, quota: TenantQuota) -> None:
        self.quota = quota
        self.queue: Deque[Tuple[asyncio.Future, Callable[[], Any], float]] = deque()
        self.running = 0
        self.stats = AdmissionStats(tenant)


class FairScheduler:
    """Round-robin admission scheduler over a bounded executor.

    Loop-confined: construct and call only from the event-loop thread.
    ``registry`` (a :class:`~repro.obs.registry.MetricsRegistry`) gets the
    serving metrics — queue-wait histogram, admission rejections, and
    per-tenant dispatch counters; it no-ops when disabled.
    """

    def __init__(
        self,
        executor: Executor,
        default_quota: TenantQuota = TenantQuota(),
        quotas: Optional[Dict[str, TenantQuota]] = None,
        registry: Any = None,
    ) -> None:
        self._executor = executor
        self._default_quota = default_quota
        self._quotas = dict(quotas or {})
        self._states: Dict[str, _TenantState] = {}
        self._rotation: Deque[str] = deque()
        self._registry = registry
        self._closed = False

    # -- admission ---------------------------------------------------------

    def submit(self, tenant: str, fn: Callable[[], Any]) -> asyncio.Future:
        """Admit one request; returns a future for its eventual result.

        Raises :class:`ServerOverloadedError` immediately when the
        tenant's queue is full — callers translate that into a wire-level
        backpressure response, so overload costs the server one bounded
        check, not a buffered request.
        """
        if self._closed:
            raise ServerError("server is shutting down")
        state = self._state(tenant)
        if len(state.queue) >= state.quota.max_queued:
            state.stats.rejected += 1
            if self._registry is not None:
                self._registry.counter("server_admission_rejections_total").inc()
                self._registry.counter(
                    f"tenant.{tenant}.rejections_total"
                ).inc()
            raise ServerOverloadedError(
                tenant, len(state.queue), state.quota.max_queued
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        state.queue.append((future, fn, time.perf_counter()))
        state.stats.admitted += 1
        if tenant not in self._rotation:
            self._rotation.append(tenant)
        self._pump(loop)
        return future

    # -- dispatch ----------------------------------------------------------

    def _pump(self, loop: asyncio.AbstractEventLoop) -> None:
        """Dispatch as much admitted work as quotas allow, round-robin."""
        progressed = True
        while progressed:
            progressed = False
            for _ in range(len(self._rotation)):
                tenant = self._rotation[0]
                self._rotation.rotate(-1)
                state = self._states[tenant]
                if not state.queue or state.running >= state.quota.max_concurrent:
                    continue
                future, fn, enqueued = state.queue.popleft()
                if future.cancelled():
                    progressed = True
                    continue
                wait_ms = (time.perf_counter() - enqueued) * 1000.0
                state.stats.queue_wait_ms_total += wait_ms
                state.stats.queue_wait_ms_max = max(
                    state.stats.queue_wait_ms_max, wait_ms
                )
                if self._registry is not None:
                    self._registry.histogram("server_queue_wait_ms").observe(
                        wait_ms
                    )
                    self._registry.counter(
                        f"tenant.{tenant}.dispatched_total"
                    ).inc()
                state.running += 1
                work = loop.run_in_executor(self._executor, fn)
                work.add_done_callback(
                    functools.partial(self._finish, loop, tenant, future)
                )
                progressed = True

    def _finish(
        self,
        loop: asyncio.AbstractEventLoop,
        tenant: str,
        future: asyncio.Future,
        work: asyncio.Future,
    ) -> None:
        """Executor completion → settle the admission future, free the slot."""
        state = self._states[tenant]
        state.running -= 1
        exc = None if work.cancelled() else work.exception()
        if exc is not None:
            state.stats.failed += 1
            if not future.cancelled():
                future.set_exception(exc)
        elif work.cancelled():
            state.stats.failed += 1
            if not future.cancelled():
                future.cancel()
        else:
            state.stats.completed += 1
            if not future.cancelled():
                future.set_result(work.result())
        if not self._closed:
            self._pump(loop)

    # -- lifecycle / introspection ----------------------------------------

    def close(self) -> None:
        """Stop admitting; fail everything still queued (running work is
        the executor's to finish — the server drains it on shutdown)."""
        self._closed = True
        for state in self._states.values():
            while state.queue:
                future, _fn, _enq = state.queue.popleft()
                state.stats.failed += 1
                if not future.done():
                    future.set_exception(ServerError("server is shutting down"))

    def _state(self, tenant: str) -> _TenantState:
        state = self._states.get(tenant)
        if state is None:
            quota = self._quotas.get(tenant, self._default_quota)
            state = _TenantState(tenant, quota)
            self._states[tenant] = state
        return state

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self._quotas[tenant] = quota
        if tenant in self._states:
            self._states[tenant].quota = quota

    def stats(self) -> Dict[str, AdmissionStats]:
        """Per-tenant stats snapshot (live queue/running gauges filled in)."""
        out: Dict[str, AdmissionStats] = {}
        for tenant, state in self._states.items():
            snap = AdmissionStats(
                tenant=tenant,
                admitted=state.stats.admitted,
                rejected=state.stats.rejected,
                completed=state.stats.completed,
                failed=state.stats.failed,
                queued=len(state.queue),
                running=state.running,
                queue_wait_ms_total=state.stats.queue_wait_ms_total,
                queue_wait_ms_max=state.stats.queue_wait_ms_max,
            )
            out[tenant] = snap
        return out

    @property
    def pending(self) -> int:
        """Admitted-but-unfinished requests (queued + running)."""
        return sum(
            len(state.queue) + state.running for state in self._states.values()
        )

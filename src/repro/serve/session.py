"""Per-connection session state and server/tenant configuration.

Authentication-lite: the first message on a connection must be a
``hello`` carrying the tenant id (and, when the server configures one,
that tenant's shared token). Everything after inherits the session's
tenant for admission accounting and its execution defaults — PR 5's
resilience knobs (``deadline_ms``, ``partial``) and tracing — which a
client can set once per session and still override per request.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.planner import PlannerOptions
from ..errors import ProtocolError
from ..sources.faults import FaultPlan
from .admission import (
    DEFAULT_MAX_CONCURRENT,
    DEFAULT_MAX_QUEUED,
    TenantQuota,
)


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's registration: identity plus admission quota.

    ``token`` is the optional shared secret the tenant must present in
    its handshake (authentication-lite — identity scoping, not crypto).
    """

    name: str
    token: Optional[str] = None
    max_concurrent: int = DEFAULT_MAX_CONCURRENT
    max_queued: int = DEFAULT_MAX_QUEUED

    def __post_init__(self) -> None:
        self.quota()  # TenantQuota validates the bounds

    def quota(self) -> TenantQuota:
        return TenantQuota(self.max_concurrent, self.max_queued)


@dataclass
class ServerConfig:
    """Query-service settings.

    ``port`` 0 binds an ephemeral port (tests); ``max_workers`` bounds the
    executor threads *all* sessions share — the connection count never
    changes how many mediator calls run at once. Unregistered tenants are
    admitted under the default quota unless ``require_known_tenant``.
    ``max_retained_results`` bounds each session's async-result registry
    (oldest unfetched results are dropped first).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_workers: int = 4
    default_max_concurrent: int = DEFAULT_MAX_CONCURRENT
    default_max_queued: int = DEFAULT_MAX_QUEUED
    tenants: Dict[str, TenantConfig] = field(default_factory=dict)
    require_known_tenant: bool = False
    max_retained_results: int = 32

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.max_retained_results < 1:
            raise ValueError("max_retained_results must be >= 1")
        self.default_quota()  # TenantQuota validates the bounds

    def default_quota(self) -> TenantQuota:
        return TenantQuota(self.default_max_concurrent, self.default_max_queued)


_session_ids = itertools.count(1)


class Session:
    """One authenticated connection: tenant identity + execution defaults.

    ``defaults`` holds the session-scoped request knobs (``deadline_ms``,
    ``partial``, ``trace``); :meth:`options_for` folds them, then any
    per-request overrides, into the mediator's base planner options.
    """

    KNOB_KEYS = ("deadline_ms", "partial", "trace")

    def __init__(self, tenant: str) -> None:
        self.id = next(_session_ids)
        self.tenant = tenant
        self.defaults: Dict[str, Any] = {}
        #: async query registry: query id → _AsyncQuery (server-managed)
        self.queries: Dict[str, Any] = {}
        self._query_ids = itertools.count(1)

    def next_query_id(self) -> str:
        return f"q{self.id}-{next(self._query_ids)}"

    def set_defaults(self, knobs: Dict[str, Any]) -> Dict[str, Any]:
        """Merge session-default knobs; unknown keys are protocol errors."""
        for key in knobs:
            if key not in self.KNOB_KEYS:
                raise ProtocolError(
                    f"unknown session default {key!r} "
                    f"(expected one of {', '.join(self.KNOB_KEYS)})"
                )
        self.defaults.update(knobs)
        return dict(self.defaults)

    def options_for(
        self, base: PlannerOptions, request: Dict[str, Any]
    ) -> PlannerOptions:
        """Resolve the effective planner options for one request.

        Precedence: request knobs > session defaults > server base
        options. ``partial`` maps to ``on_source_failure``; a request
        ``faults`` section (declarative, same shape as the config file's)
        arms a per-query fault plan — the chaos-testing hook.
        """
        knobs = dict(self.defaults)
        for key in self.KNOB_KEYS:
            if key in request:
                knobs[key] = request[key]
        changes: Dict[str, Any] = {}
        if "deadline_ms" in knobs:
            changes["deadline_ms"] = float(knobs["deadline_ms"])
        if "partial" in knobs:
            changes["on_source_failure"] = (
                "partial" if knobs["partial"] else "fail"
            )
        if "trace" in knobs:
            changes["trace"] = bool(knobs["trace"])
        if "faults" in request and request["faults"] is not None:
            if not isinstance(request["faults"], dict):
                raise ProtocolError("request 'faults' must be an object")
            changes["faults"] = FaultPlan.from_config(request["faults"])
        return base.but(**changes) if changes else base

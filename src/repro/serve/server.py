"""The asyncio query server.

One asyncio event loop owns all connections and the admission scheduler;
blocking mediator calls run on a bounded ``ThreadPoolExecutor`` shared by
every session. Requests and responses are JSON lines (see
:mod:`repro.serve.protocol`).

Operations::

    hello   {tenant, token?}                 -> handshake (required first)
    query   {sql, deadline_ms?, partial?, trace?, faults?}   sync execute
    submit  {sql, ...same knobs}             -> {query_id}   async execute
    status  {query_id}                       -> queued|running|done|error
    fetch   {query_id, offset?, limit?}      -> one page of a done result
    set     {defaults: {deadline_ms?, partial?, trace?}}     session knobs
    stats   {}                               -> admission + cache stats
    ping    {}                               -> liveness
    close   {}                               -> server closes connection

Every response echoes the request's ``id`` (when given) for correlation.
Partial results keep their degradation metadata on the wire: responses
always carry ``complete`` and ``excluded_sources``, and typed failures
(timeouts with budget/elapsed/source attribution, backpressure with
queue depths) serialize losslessly — a remote client sees exactly what a
local ``Mediator.query()`` caller would.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from ..core.mediator import GlobalInformationSystem
from ..errors import GISError, ProtocolError, ServerError
from .admission import FairScheduler
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_message,
    encode_error,
    encode_message,
    encode_result,
)
from .session import ServerConfig, Session, TenantConfig

__all__ = ["QueryServer", "ServerConfig", "TenantConfig"]

DEFAULT_FETCH_LIMIT = 1024


class _AsyncQuery:
    """One submitted query's lifecycle (loop-confined except ``state``,
    which the executor thread flips to ``running`` — a benign one-word
    write the loop only ever reads for status display)."""

    __slots__ = ("query_id", "sql", "state", "result", "error")

    def __init__(self, query_id: str, sql: str) -> None:
        self.query_id = query_id
        self.sql = sql
        self.state = "queued"  # queued | running | done | error
        self.result = None
        self.error: Optional[BaseException] = None


class QueryServer:
    """A multi-tenant JSON-lines query service over one mediator."""

    def __init__(
        self,
        gis: GlobalInformationSystem,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.gis = gis
        self.config = config or ServerConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self.scheduler: Optional[FairScheduler] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._background_loop: Optional[asyncio.AbstractEventLoop] = None
        self._address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        if self._server is not None:
            raise ServerError("server already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="gis-serve-worker",
        )
        quotas = {
            name: tenant.quota()
            for name, tenant in self.config.tenants.items()
        }
        self.scheduler = FairScheduler(
            self._executor,
            default_quota=self.config.default_quota(),
            quotas=quotas,
            registry=self.gis.obs.registry,
        )
        self._server = await asyncio.start_server(
            self._accept,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self._address = (host, port)
        return self._address

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ServerError("server not started")
        return self._address

    async def stop(self) -> None:
        """Stop accepting, fail queued work, drain running queries, and
        release every thread — the clean-shutdown contract the smoke test
        asserts (no leaked threads or tasks)."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self.scheduler is not None:
            self.scheduler.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._executor is not None:
            # Waits for in-flight mediator calls; queued-but-undispatched
            # work was already failed by scheduler.close().
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self._executor.shutdown(wait=True)
            )
        self._server = None
        self._executor = None
        self.scheduler = None
        self._address = None

    # -- background-thread helpers (tests, REPL --serve) -------------------

    def start_background(self) -> Tuple[str, int]:
        """Run the server on a dedicated event-loop thread; returns the
        bound address once accepting."""
        if self._thread is not None:
            raise ServerError("server already running in background")
        loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list = []

        def run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors to the caller
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="gis-serve-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        self._background_loop = loop
        return self.address

    def stop_background(self, timeout: float = 30.0) -> None:
        """Stop a background server and join its loop thread."""
        if self._thread is None:
            return
        loop = self._background_loop
        future = asyncio.run_coroutine_threadsafe(self.stop(), loop)
        future.result(timeout=timeout)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServerError("server loop thread did not stop")
        self._thread = None

    # -- connection handling -----------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[Session] = None
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await self._send(
                    writer, {"ok": False, "error": encode_error(
                        ProtocolError("request line too long")
                    )},
                )
                return
            except ConnectionError:
                return
            if not line:
                return
            if not line.strip():
                continue
            request_id = None
            try:
                request = decode_message(line)
                request_id = request.get("id")
                op = request.get("op")
                if not isinstance(op, str):
                    raise ProtocolError("request is missing its 'op'")
                if session is None and op not in ("hello", "ping", "close"):
                    raise ProtocolError(
                        "handshake required: send {'op': 'hello', 'tenant': ...} first"
                    )
                if op == "hello":
                    session, response = self._handle_hello(request)
                elif op == "ping":
                    response = {"ok": True, "pong": True}
                elif op == "close":
                    await self._send(
                        writer, self._respond({"ok": True, "closing": True},
                                              request_id),
                    )
                    return
                else:
                    response = await self._dispatch(session, request, op)
            except GISError as exc:
                response = {"ok": False, "error": encode_error(exc)}
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: never kill the connection
                response = {"ok": False, "error": encode_error(exc)}
            try:
                await self._send(writer, self._respond(response, request_id))
            except ConnectionError:
                return

    @staticmethod
    def _respond(response: Dict[str, Any], request_id: Any) -> Dict[str, Any]:
        if request_id is not None:
            response = {"id": request_id, **response}
        return response

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    # -- op handlers -------------------------------------------------------

    def _handle_hello(
        self, request: Dict[str, Any]
    ) -> Tuple[Session, Dict[str, Any]]:
        version = int(request.get("version", PROTOCOL_VERSION))
        if version > PROTOCOL_VERSION:
            raise ProtocolError(
                f"client protocol v{version} is newer than server v{PROTOCOL_VERSION}"
            )
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("hello requires a non-empty 'tenant'")
        known = self.config.tenants.get(tenant)
        if known is None and self.config.require_known_tenant:
            raise ProtocolError(f"unknown tenant {tenant!r}")
        if known is not None and known.token is not None:
            if request.get("token") != known.token:
                raise ProtocolError(f"bad token for tenant {tenant!r}")
        session = Session(tenant)
        return session, {
            "ok": True,
            "session": session.id,
            "tenant": tenant,
            "version": PROTOCOL_VERSION,
        }

    async def _dispatch(
        self, session: Session, request: Dict[str, Any], op: str
    ) -> Dict[str, Any]:
        if op == "query":
            return await self._handle_query(session, request)
        if op == "submit":
            return self._handle_submit(session, request)
        if op == "status":
            return self._handle_status(session, request)
        if op == "fetch":
            return self._handle_fetch(session, request)
        if op == "set":
            defaults = request.get("defaults")
            if not isinstance(defaults, dict):
                raise ProtocolError("set requires a 'defaults' object")
            return {"ok": True, "defaults": session.set_defaults(defaults)}
        if op == "stats":
            return self._handle_stats()
        if op == "catalog":
            return {"ok": True, "catalog": self.gis.catalog_status()}
        raise ProtocolError(f"unknown op {op!r}")

    def _make_work(self, session: Session, request: Dict[str, Any]):
        """Build the blocking mediator call for one request (resolves the
        effective options *now*, on the loop, so knob errors surface as
        protocol errors rather than executor failures)."""
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("request requires a non-empty 'sql'")
        options = session.options_for(self.gis.planner.options, request)
        gis = self.gis
        tracer = gis.obs.tracer
        tenant = session.tenant
        registry = gis.obs.registry

        def work():
            span = tracer.root_span("serve:execute", tenant=tenant, sql=sql)
            result = None
            try:
                result = gis.query(sql, options)
                return result
            finally:
                span.end()
                if registry.enabled:
                    registry.counter(f"tenant.{tenant}.queries_total").inc()
                    if result is not None:
                        net = result.metrics.network
                        if net.cache_hit:
                            registry.counter(
                                f"tenant.{tenant}.result_cache_hits"
                            ).inc()
                        if net.fragment_cache_hits:
                            registry.counter(
                                f"tenant.{tenant}.fragment_cache_hits"
                            ).inc(net.fragment_cache_hits)
                        if net.materialized_view_hits:
                            registry.counter(
                                f"tenant.{tenant}.materialized_view_hits"
                            ).inc(net.materialized_view_hits)

        return sql, work

    async def _handle_query(
        self, session: Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        _sql, work = self._make_work(session, request)
        assert self.scheduler is not None
        future = self.scheduler.submit(session.tenant, work)
        result = await future
        payload = encode_result(result)
        payload["ok"] = True
        return payload

    def _handle_submit(
        self, session: Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        sql, work = self._make_work(session, request)
        query_id = session.next_query_id()
        entry = _AsyncQuery(query_id, sql)

        def tracked_work():
            entry.state = "running"
            return work()

        assert self.scheduler is not None
        future = self.scheduler.submit(session.tenant, tracked_work)
        session.queries[query_id] = entry
        self._trim_results(session)

        def finished(fut: asyncio.Future) -> None:
            if fut.cancelled():
                entry.state = "error"
                entry.error = ServerError("query cancelled")
            elif fut.exception() is not None:
                entry.state = "error"
                entry.error = fut.exception()
            else:
                entry.state = "done"
                entry.result = fut.result()

        future.add_done_callback(finished)
        return {"ok": True, "query_id": query_id, "state": entry.state}

    def _trim_results(self, session: Session) -> None:
        """Bound the per-session async registry (oldest settled first)."""
        limit = max(self.config.max_retained_results, 1)
        if len(session.queries) <= limit:
            return
        for query_id in list(session.queries):
            if len(session.queries) <= limit:
                break
            if session.queries[query_id].state in ("done", "error"):
                del session.queries[query_id]

    def _lookup_query(self, session: Session, request: Dict[str, Any]) -> _AsyncQuery:
        query_id = request.get("query_id")
        entry = session.queries.get(query_id)
        if entry is None:
            raise ProtocolError(f"unknown query_id {query_id!r}")
        return entry

    def _handle_status(
        self, session: Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        entry = self._lookup_query(session, request)
        response: Dict[str, Any] = {
            "ok": True,
            "query_id": entry.query_id,
            "state": entry.state,
        }
        if entry.state == "done" and entry.result is not None:
            response["row_count"] = len(entry.result.rows)
            response["complete"] = bool(entry.result.complete)
        if entry.state == "error" and entry.error is not None:
            response["error"] = encode_error(entry.error)
        return response

    def _handle_fetch(
        self, session: Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        entry = self._lookup_query(session, request)
        if entry.state == "error":
            assert entry.error is not None
            return {
                "ok": False,
                "query_id": entry.query_id,
                "state": "error",
                "error": encode_error(entry.error),
            }
        if entry.state != "done":
            return {"ok": True, "query_id": entry.query_id,
                    "state": entry.state, "ready": False}
        result = entry.result
        offset = int(request.get("offset", 0))
        limit = int(request.get("limit", DEFAULT_FETCH_LIMIT))
        if offset < 0 or limit < 1:
            raise ProtocolError("fetch offset must be >= 0 and limit >= 1")
        window = result.rows[offset : offset + limit]
        payload = encode_result(result, rows=window)
        payload.update(
            {
                "ok": True,
                "query_id": entry.query_id,
                "state": "done",
                "ready": True,
                "offset": offset,
                "returned": len(window),
                "eof": offset + len(window) >= len(result.rows),
            }
        )
        return payload

    def _handle_stats(self) -> Dict[str, Any]:
        assert self.scheduler is not None
        tenants = {
            tenant: stats.as_dict()
            for tenant, stats in self.scheduler.stats().items()
        }
        return {
            "ok": True,
            "tenants": tenants,
            "plan_cache": self.gis.plan_cache.stats(),
            "result_cache": self.gis.result_cache_stats(),
            "fragment_cache": self.gis.fragment_cache.stats(),
            "materialized_views": self.gis.materialized.stats(),
            "workers": self.config.max_workers,
        }

"""JSON-lines wire protocol for the query service.

One request or response per line, each a JSON object, UTF-8, ``\\n``
terminated. Requests carry ``op`` (and ``id`` for correlation, echoed
back verbatim); responses carry ``ok`` plus either the op's payload or an
``error`` object.

Value encoding must be *lossless*: result cells are only the global
scalar types (INTEGER / FLOAT / TEXT / BOOLEAN / DATE / NULL), and JSON
covers all but DATE natively. Dates travel as ``{"$date": "YYYY-MM-DD"}``
— unambiguous because a plain dict can never appear in a cell.

Error payloads keep failures *typed* across the wire: ``code`` names the
exception class, ``retryable`` tells clients whether backoff-and-retry is
sane, and ``details`` carries structured attribution (e.g. a timeout's
budget/elapsed/source breakdown) so a client can render exactly what a
local caller of ``Mediator.query()`` would have seen.
"""

from __future__ import annotations

import json
from datetime import date
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    BindError,
    CatalogError,
    ExecutionError,
    GISError,
    ParseError,
    PlanError,
    ProtocolError,
    QueryTimeoutError,
    ServerError,
    ServerOverloadedError,
    SourceError,
)

#: Wire protocol revision; servers reject clients announcing a higher one.
PROTOCOL_VERSION = 1

MAX_LINE_BYTES = 4 * 1024 * 1024


# ---------------------------------------------------------------------------
# value round-tripping
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """One result cell to its JSON form (dates become ``{"$date": ...}``)."""
    if isinstance(value, date):
        return {"$date": value.isoformat()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and "$date" in value:
        return date.fromisoformat(value["$date"])
    return value


def encode_row(row: Sequence[Any]) -> List[Any]:
    return [encode_value(cell) for cell in row]


def decode_row(row: Sequence[Any]) -> Tuple[Any, ...]:
    return tuple(decode_value(cell) for cell in row)


# ---------------------------------------------------------------------------
# message framing
# ---------------------------------------------------------------------------


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises :class:`ProtocolError` on bad input."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages must be JSON objects, got {type(message).__name__}"
        )
    return message


# ---------------------------------------------------------------------------
# typed errors across the wire
# ---------------------------------------------------------------------------


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """An exception as a wire error object, keeping typed attribution."""
    payload: Dict[str, Any] = {
        "code": type(exc).__name__,
        "message": str(exc),
        "retryable": bool(getattr(exc, "retryable", False)),
    }
    details: Dict[str, Any] = {}
    if isinstance(exc, QueryTimeoutError):
        details = {
            "budget_ms": exc.budget_ms,
            "elapsed_ms": exc.elapsed_ms,
            "source_name": exc.source_name,
            "per_source_rows": dict(exc.per_source_rows),
        }
    elif isinstance(exc, SourceError):
        details = {"source_name": exc.source_name}
    elif isinstance(exc, ServerOverloadedError):
        details = {
            "tenant": exc.tenant,
            "queued": exc.queued,
            "limit": exc.limit,
        }
    if details:
        payload["details"] = details
    return payload


#: Error codes decoded back to their exception class client-side. Codes
#: outside this table degrade to the nearest base class, never to a bare
#: Exception — a wire error is always a GISError.
_ERROR_CLASSES = {
    "ParseError": ParseError,
    "BindError": BindError,
    "CatalogError": CatalogError,
    "PlanError": PlanError,
    "ExecutionError": ExecutionError,
    "ServerError": ServerError,
    "ProtocolError": ProtocolError,
    "GISError": GISError,
}


def decode_error(payload: Dict[str, Any]) -> GISError:
    """A wire error object back to a (typed) exception instance."""
    code = payload.get("code", "GISError")
    message = payload.get("message", "server error")
    details = payload.get("details", {}) or {}
    if code == "QueryTimeoutError":
        return QueryTimeoutError(
            budget_ms=float(details.get("budget_ms", 0.0)),
            elapsed_ms=float(details.get("elapsed_ms", 0.0)),
            source_name=details.get("source_name"),
            per_source_rows=details.get("per_source_rows"),
        )
    if code == "ServerOverloadedError":
        return ServerOverloadedError(
            tenant=details.get("tenant", "?"),
            queued=int(details.get("queued", 0)),
            limit=int(details.get("limit", 0)),
            message=message,
        )
    if code == "SourceError":
        return SourceError(
            source_name=details.get("source_name", "?"),
            message=message,
            retryable=bool(payload.get("retryable", True)),
        )
    cls = _ERROR_CLASSES.get(code, GISError)
    exc = cls(message)
    return exc


# ---------------------------------------------------------------------------
# result payloads
# ---------------------------------------------------------------------------


def encode_result(result: Any, rows: Optional[Sequence[Any]] = None) -> Dict[str, Any]:
    """A QueryResult as a response payload.

    ``rows`` overrides the encoded row window (FETCH paging); metadata —
    including the partial-result contract (``complete`` +
    ``excluded_sources``) — always reflects the full result, so degraded
    answers are visible on every page.
    """
    window = result.rows if rows is None else rows
    net = result.metrics.network
    return {
        "columns": list(result.column_names),
        "rows": [encode_row(row) for row in window],
        "row_count": len(result.rows),
        "complete": bool(result.complete),
        "excluded_sources": dict(result.excluded_sources),
        "metrics": {
            "wall_ms": result.metrics.wall_ms,
            "planning_ms": result.metrics.planning_ms,
            "network_ms": net.network_ms,
            "rows_shipped": net.rows_shipped,
            "messages": net.messages,
            "result_cache_hit": bool(net.cache_hit),
            "plan_cache_hit": bool(getattr(net, "plan_cache_hit", False)),
        },
    }

"""The serving tier: a multi-tenant async query service over the mediator.

The 1989 GIS vision is a *service*: one global schema answering many
autonomous users concurrently. This package adds that tier on top of the
blocking :class:`~repro.core.mediator.GlobalInformationSystem`:

* :mod:`repro.serve.protocol` — the JSON-lines wire protocol (one JSON
  object per line over TCP), with lossless value encoding and error
  payloads that preserve typed failure attribution.
* :mod:`repro.serve.admission` — admission control: bounded per-tenant
  queues, concurrency quotas, and round-robin draining so a flooding
  tenant gets backpressure instead of starving everyone else.
* :mod:`repro.serve.session` — per-connection state: tenant identity
  (handshake authentication-lite) and session execution defaults.
* :mod:`repro.serve.server` — the asyncio server: sync QUERY plus the
  SkyQuery-style async SUBMIT / STATUS / FETCH protocol.
* :mod:`repro.serve.client` — a small blocking client used by the REPL's
  client mode, tests, and benchmarks.
"""

from .admission import AdmissionStats, FairScheduler, TenantQuota
from .client import ServeClient
from .protocol import decode_message, decode_value, encode_message, encode_value
from .server import QueryServer, ServerConfig, TenantConfig

__all__ = [
    "AdmissionStats",
    "FairScheduler",
    "QueryServer",
    "ServeClient",
    "ServerConfig",
    "TenantConfig",
    "TenantQuota",
    "decode_message",
    "decode_value",
    "encode_message",
    "encode_value",
]

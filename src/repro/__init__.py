"""gis-mediator: a federated Global Information System (ICDE 1989 reproduction).

A mediator/wrapper federation engine: one global schema and SQL dialect over
autonomous, heterogeneous component systems, with capability-driven
pushdown, cost-based distributed join ordering, and semijoin reduction over
a simulated wide-area network.

Quickstart::

    from repro import GlobalInformationSystem, MemorySource, NetworkLink

    gis = GlobalInformationSystem()
    crm = MemorySource("crm")
    crm.add_table("customers", schema, rows)
    gis.register_source("crm", crm, link=NetworkLink(latency_ms=25))
    gis.register_table("customers", source="crm")
    print(gis.query("SELECT COUNT(*) FROM customers").scalar())
"""

from .config import build_from_config, load_config
from .catalog import (
    Catalog,
    CatalogEvent,
    CatalogJournal,
    CatalogVersions,
    Column,
    ColumnStatistics,
    EquiDepthHistogram,
    TableMapping,
    TableSchema,
    TableStatistics,
)
from .core.mediator import GlobalInformationSystem
from .core.planner import NAIVE_OPTIONS, PlannedQuery, Planner, PlannerOptions
from .core.result import QueryMetrics, QueryResult
from .datatypes import DataType
from .obs import MetricsRegistry, Observability, Tracer
from .errors import (
    BindError,
    CapabilityError,
    CatalogError,
    DuplicateObjectError,
    ExecutionError,
    GISError,
    ParseError,
    PlanError,
    QueryTimeoutError,
    SourceError,
    TypeCheckError,
    UnknownObjectError,
)
from .sources import (
    Adapter,
    CsvSource,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    KeyValueSource,
    MemorySource,
    NetworkLink,
    RestSource,
    SimulatedNetwork,
    SourceCapabilities,
    SQLiteSource,
    TransferMetrics,
)

__version__ = "1.0.0"

__all__ = [
    "Adapter",
    "BindError",
    "CapabilityError",
    "build_from_config",
    "load_config",
    "Catalog",
    "CatalogError",
    "CatalogEvent",
    "CatalogJournal",
    "CatalogVersions",
    "Column",
    "ColumnStatistics",
    "CsvSource",
    "DataType",
    "DuplicateObjectError",
    "EquiDepthHistogram",
    "ExecutionError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GISError",
    "GlobalInformationSystem",
    "KeyValueSource",
    "MemorySource",
    "MetricsRegistry",
    "NAIVE_OPTIONS",
    "Observability",
    "NetworkLink",
    "ParseError",
    "PlanError",
    "PlannedQuery",
    "Planner",
    "PlannerOptions",
    "QueryMetrics",
    "QueryResult",
    "QueryTimeoutError",
    "RestSource",
    "SimulatedNetwork",
    "SourceCapabilities",
    "SourceError",
    "SQLiteSource",
    "TableMapping",
    "TableSchema",
    "TableStatistics",
    "Tracer",
    "TransferMetrics",
    "TypeCheckError",
    "UnknownObjectError",
    "__version__",
]

r"""Interactive federation shell.

``python -m repro --demo`` builds the TPC-H-lite demo federation and drops
into a small REPL::

    gis> SELECT COUNT(*) FROM orders;
    gis> \tables
    gis> \explain SELECT c_name FROM customers WHERE c_id = 7;
    gis> \quit

Statements end with ``;`` (multi-line input accumulates until one appears).
Backslash commands:

========  ===========================================================
\help     this text
\tables   list global tables and views
\sources  list registered sources with their capability envelopes
\schema T show a table's columns and statistics
\explain  (prefix to a query) show the distributed plan instead of rows
\profile  (prefix to a query) run it and show actual rows per operator
\metrics  last query's transfer metrics, plus the mediator-wide metrics
          registry and circuit-breaker states when metrics are enabled
\cache    semantic-cache state: fragment cache, result cache, and
          materialized views; \cache clear drops fragment+result entries
\catalog  live catalog state: catalog epoch, sources with epochs,
          tables/views with schema+stats versions, and — when catalog
          persistence is armed — the journal position
\trace on|off|FILE  record spans per query; FILE also exports a Chrome
          trace_event file (chrome://tracing / Perfetto) after each query
\health   per-source health: breaker state, failure counts, link speed,
          shipped totals, injected-fault counters when faults are armed,
          and — once pages have been observed — latency EWMA and
          p50/p95/p99, error rate, the no-progress timeout in force
          (adaptive when armed and warm), and hedge win/loss counters
\naive    toggle the naive (no-optimizer) baseline for comparisons
\parallel N|off  fetch fragments with N concurrent workers (off = sequential)
\batch N|off  rows per operator batch (off = planner default, 1 = row-at-a-time)
\deadline MS|off  abort queries that exceed MS wall-clock milliseconds
\partial on|off  degrade to partial results when a source stays down
          (instead of failing the whole query)
\analyze  gather statistics on all tables
\quit     exit
========  ===========================================================

The class is I/O-stream parameterized so tests can drive it directly.
"""

from __future__ import annotations

import sys
from typing import IO, Iterable, List, Optional

from .core.mediator import GlobalInformationSystem
from .core.planner import NAIVE_OPTIONS, PlannerOptions
from .core.result import QueryResult
from .errors import GISError


class Repl:
    """Line-oriented shell over one mediator instance."""

    PROMPT = "gis> "
    CONTINUATION = "...> "

    def __init__(
        self,
        gis: GlobalInformationSystem,
        out: Optional[IO[str]] = None,
    ) -> None:
        self.gis = gis
        self.out = out or sys.stdout
        self.naive = False
        self.parallel = 1
        self.batch: Optional[int] = None
        self.deadline_ms = 0.0
        self.partial = False
        self.last_result: Optional[QueryResult] = None
        self._buffer: List[str] = []
        self._done = False

    # -- driving ---------------------------------------------------------------

    def run(self, lines: Iterable[str], interactive: bool = False) -> None:
        """Process input lines until exhausted or \\quit."""
        if interactive:
            self._write(self.PROMPT, newline=False)
        for line in lines:
            self.feed_line(line)
            if self._done:
                return
            if interactive:
                prompt = self.CONTINUATION if self._buffer else self.PROMPT
                self._write(prompt, newline=False)
        # Flush a trailing statement missing its semicolon.
        if self._buffer and not self._done:
            self._execute(" ".join(self._buffer))
            self._buffer = []

    def feed_line(self, line: str) -> None:
        """Process one input line (command, or a piece of a statement)."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("\\"):
            self._command(stripped)
            return
        if not stripped:
            return
        self._buffer.append(stripped)
        if stripped.endswith(";"):
            statement = " ".join(self._buffer).rstrip(";").strip()
            self._buffer = []
            if statement:
                self._execute(statement)

    # -- commands ---------------------------------------------------------------

    def _command(self, text: str) -> None:
        parts = text.split(None, 1)
        name = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if name in ("\\quit", "\\q", "\\exit"):
            self._write("bye")
            self._done = True
        elif name == "\\help":
            self._write(__doc__ or "")
        elif name == "\\tables":
            self._show_tables()
        elif name == "\\sources":
            self._show_sources()
        elif name == "\\schema":
            self._show_schema(argument)
        elif name == "\\metrics":
            self._show_metrics()
        elif name == "\\cache":
            self._cache_command(argument)
        elif name == "\\catalog":
            self._show_catalog()
        elif name == "\\trace":
            self._trace_command(argument)
        elif name == "\\naive":
            if argument.lower() in ("on", "off"):
                self.naive = argument.lower() == "on"
            else:
                self.naive = not self.naive
            self._write(f"naive mode {'ON' if self.naive else 'OFF'}")
        elif name == "\\parallel":
            if argument.lower() in ("off", "1", ""):
                self.parallel = 1
                self._write("parallel fragment execution OFF (sequential)")
            elif argument.isdigit() and int(argument) > 1:
                self.parallel = int(argument)
                self._write(
                    f"parallel fragment execution ON "
                    f"({self.parallel} workers)"
                )
            else:
                self._write("usage: \\parallel <N>|off")
        elif name == "\\batch":
            if argument.lower() in ("off", ""):
                self.batch = None
                self._write("batch size: planner default")
            elif argument.isdigit() and int(argument) >= 1:
                self.batch = int(argument)
                self._write(f"batch size: {self.batch} rows")
            else:
                self._write("usage: \\batch <N>|off")
        elif name == "\\health":
            self._show_health()
        elif name == "\\deadline":
            if argument.lower() in ("off", "0", ""):
                self.deadline_ms = 0.0
                self._write("query deadline OFF")
            else:
                try:
                    value = float(argument)
                except ValueError:
                    value = -1.0
                if value > 0:
                    self.deadline_ms = value
                    self._write(f"query deadline {value:g} ms")
                else:
                    self._write("usage: \\deadline <MS>|off")
        elif name == "\\partial":
            if argument.lower() in ("on", "off"):
                self.partial = argument.lower() == "on"
            else:
                self.partial = not self.partial
            mode = "partial" if self.partial else "fail"
            self._write(f"on-source-failure mode: {mode}")
        elif name == "\\analyze":
            collected = self.gis.analyze()
            self._write(f"analyzed {len(collected)} tables")
        elif name == "\\explain":
            if not argument:
                self._write("usage: \\explain <query>")
            else:
                self._guard(lambda: self._write(
                    self.gis.explain(argument.rstrip(";"), self._options())
                ))
        elif name == "\\profile":
            if not argument:
                self._write("usage: \\profile <query>")
            else:
                self._guard(lambda: self._write(
                    self.gis.explain_analyze(argument.rstrip(";"), self._options())
                ))
        else:
            self._write(f"unknown command {name!r}; try \\help")

    def _show_metrics(self) -> None:
        if self.last_result is None:
            self._write("no query executed yet")
        else:
            self._write(self.last_result.metrics.summary())
        obs = self.gis.obs
        if obs.registry.enabled:
            states = obs.publish_breakers(self.gis.breakers)
            self._write("")
            self._write(obs.registry.format_snapshot())
            for source, info in sorted(states.items()):
                self._write(
                    f"  breaker {source}: {info['state']} "
                    f"({info['trips']} trips)"
                )

    def _cache_command(self, argument: str) -> None:
        gis = self.gis
        if argument.lower() == "clear":
            dropped = gis.fragment_cache.clear()
            gis.clear_result_cache()
            self._write(
                f"cleared {dropped} fragment cache entries and the "
                f"result cache"
            )
            return
        if argument:
            self._write("usage: \\cache [clear]")
            return
        fragment = gis.fragment_cache
        if fragment.enabled:
            stats = fragment.stats()
            self._write(
                f"fragment cache: {stats['entries']} entries / "
                f"{stats['bytes']:.0f} of {stats['budget_bytes']} bytes; "
                f"{stats['hits']} exact + {stats['subsumed_hits']} subsumed "
                f"hits, {stats['misses']} misses "
                f"(hit rate {stats['hit_rate']:.0%}); "
                f"{stats['evictions']} evictions, "
                f"{stats['rejected_stale']} stale rejections"
            )
        else:
            self._write("fragment cache: OFF (fragment_cache_bytes = 0)")
        result_stats = gis.result_cache_stats()
        if result_stats["capacity"] > 0:
            self._write(
                f"result cache: {result_stats['entries']} of "
                f"{result_stats['capacity']} entries; "
                f"{result_stats['hits']} hits, {result_stats['misses']} "
                f"misses (hit rate {result_stats['hit_rate']:.0%})"
            )
        else:
            self._write("result cache: OFF (result_cache_size = 0)")
        materialized = gis.materialized.stats()
        if materialized["views"]:
            self._write(
                f"materialized views: {materialized['hits']} snapshot hits, "
                f"{materialized['stale_substitutions']} stale fallbacks"
            )
            for entry in materialized["entries"]:
                fresh = "fresh" if gis.materialized.fresh(entry["name"]) else "stale"
                self._write(
                    f"  {entry['name']}: {entry['rows']} rows ({fresh}), "
                    f"staleness {entry['staleness_ms']:g} ms, "
                    f"{entry['refreshes']} refreshes, {entry['hits']} hits, "
                    f"sources {', '.join(entry['sources'])}"
                )
        else:
            self._write("materialized views: none")

    def _show_catalog(self) -> None:
        status = self.gis.catalog_status()
        self._write(f"catalog epoch: {status['catalog_epoch']}")
        self._write("sources:")
        if not status["sources"]:
            self._write("  (none)")
        for source in status["sources"]:
            spec = "declarative" if source["recoverable"] else "ephemeral"
            self._write(
                f"  {source['name']}: epoch {source['epoch']}, "
                f"{source['tables']} tables, {spec}"
            )
        self._write("tables:")
        if not status["tables"]:
            self._write("  (none)")
        for table in status["tables"]:
            if table["kind"] == "view":
                self._write(f"  {table['name']}  (view)")
                continue
            stats = "analyzed" if table["analyzed"] else "no stats"
            line = (
                f"  {table['name']}  ->  {table['source']} "
                f"(schema v{table['schema_version']}, "
                f"stats v{table['stats_version']}, {stats}"
            )
            if table["replicas"]:
                line += f", {table['replicas']} replicas"
            self._write(line + ")")
        if status["materialized"]:
            self._write(
                "materialized views: " + ", ".join(status["materialized"])
            )
        journal = status["journal"]
        if journal is None:
            self._write("journal: OFF (no catalog.journal configured)")
        else:
            self._write(
                f"journal: {journal['path']} @ seq {journal['seq']} "
                f"(last snapshot seq {journal['last_snapshot_seq']}, "
                f"{journal['records_since_snapshot']} records since, "
                f"interval {journal['snapshot_interval']})"
            )
        recovery = status["recovery"]
        if recovery is not None and recovery.get("recovered"):
            self._write(
                f"recovered: {recovery['records_replayed']} records replayed"
                + (
                    f", skipped sources: {', '.join(recovery['skipped_sources'])}"
                    if recovery["skipped_sources"]
                    else ""
                )
            )

    def _show_health(self) -> None:
        sources = list(self.gis.catalog.source_names())
        if not sources:
            self._write("no sources registered")
            return
        status = self.gis.health_status(self._options())
        ledger = self.gis.network.per_source()
        injector = self.gis.fault_injector
        faults = injector.snapshot() if injector is not None else {}
        for name in sources:
            key = name.lower()
            link = self.gis.network.link_for(name)
            entry = status.get(name, {})
            info = entry.get("breaker", {})
            state = str(info.get("state", "closed"))
            trips = info.get("trips", 0)
            failures = info.get("failures", 0)
            line = (
                f"  {name}: breaker {state} "
                f"({trips} trips, {failures} recent failures); "
                f"link {link.latency_ms:.0f}ms/"
                f"{link.bandwidth_bytes_per_s / 1000:.0f}KBps"
            )
            transfers = ledger.get(key)
            if transfers is not None:
                line += (
                    f"; shipped {transfers.rows} rows in "
                    f"{transfers.messages} messages"
                )
            snapshot = faults.get(key)
            if snapshot is not None:
                line += (
                    f"; faults {snapshot.failures}/{snapshot.calls} calls"
                )
            self._write(line)
            if entry.get("samples"):
                self._write(
                    f"    latency ewma {entry['ewma_ms']:.1f}ms, "
                    f"p50 {entry['p50_ms']:.1f}ms / "
                    f"p95 {entry['p95_ms']:.1f}ms / "
                    f"p99 {entry['p99_ms']:.1f}ms "
                    f"({entry['samples']} pages, "
                    f"error rate {entry['error_rate']:.0%})"
                )
            timeout_ms = entry.get("timeout_ms")
            if timeout_ms is not None:
                mode = "adaptive" if entry.get("timeout_adaptive") else "static"
                self._write(f"    timeout {timeout_ms:.0f}ms ({mode})")
            if entry.get("hedges_launched"):
                self._write(
                    f"    hedges {entry['hedges_won']}/"
                    f"{entry['hedges_launched']} won"
                )

    def _trace_command(self, argument: str) -> None:
        obs = self.gis.obs
        lowered = argument.lower()
        if lowered == "on":
            obs.tracer.enable()
            self._write("tracing ON")
        elif lowered == "off":
            obs.tracer.disable()
            self._write("tracing OFF")
        elif argument:
            obs.trace_path = argument
            obs.tracer.enable()
            self._write(f"tracing ON -> {argument}")
        else:
            state = "ON" if obs.tracer.enabled else "OFF"
            line = f"tracing {state} ({len(obs.spans)} spans retained"
            if obs.trace_path:
                line += f", exporting to {obs.trace_path}"
            self._write(line + ")")

    def _show_tables(self) -> None:
        for name in sorted(self.gis.catalog.table_names(), key=str.lower):
            entry = self.gis.catalog.table(name)
            if entry.is_view:
                self._write(f"  {name}  (view)")
            else:
                assert entry.mapping is not None
                self._write(
                    f"  {name}  ->  {entry.mapping.source}."
                    f"{entry.mapping.remote_table}"
                )

    def _show_sources(self) -> None:
        for name in self.gis.catalog.source_names():
            adapter = self.gis.catalog.source(name)
            caps = adapter.capabilities()
            abilities = [
                label
                for label, enabled in (
                    ("filters", caps.filters),
                    ("projection", caps.projection),
                    ("joins", caps.joins),
                    ("aggregation", caps.aggregation),
                    ("sort", caps.sort),
                    ("limit", caps.limit),
                )
                if enabled
            ]
            if caps.key_equality_only:
                abilities.append("key-lookup")
            link = self.gis.network.link_for(name)
            self._write(
                f"  {name}: [{', '.join(abilities) or 'scan only'}] "
                f"link={link.latency_ms:.0f}ms/"
                f"{link.bandwidth_bytes_per_s/1000:.0f}KBps"
            )

    def _show_schema(self, table_name: str) -> None:
        if not table_name:
            self._write("usage: \\schema <table>")
            return

        def show() -> None:
            entry = self.gis.catalog.table(table_name)
            schema = entry.schema
            if schema is None:
                self._write(f"{table_name}: schema not yet derived (query it once)")
                return
            statistics = self.gis.catalog.statistics(table_name)
            for column in schema.columns:
                line = f"  {column.name}  {column.dtype}"
                if statistics is not None:
                    column_stats = statistics.column(column.name)
                    if column_stats is not None:
                        line += (
                            f"  (ndv≈{column_stats.distinct_count:.0f}, "
                            f"nulls={column_stats.null_fraction:.0%})"
                        )
                self._write(line)
            if statistics is not None:
                self._write(f"  ~{statistics.row_count:.0f} rows")

        self._guard(show)

    # -- execution ---------------------------------------------------------------

    def _options(self) -> Optional[PlannerOptions]:
        base = NAIVE_OPTIONS if self.naive else None
        if self.parallel > 1:
            base = (base or PlannerOptions()).but(
                max_parallel_fragments=self.parallel
            )
        if self.batch is not None:
            base = (base or PlannerOptions()).but(batch_size=self.batch)
        if self.deadline_ms > 0:
            base = (base or PlannerOptions()).but(deadline_ms=self.deadline_ms)
        if self.partial:
            base = (base or PlannerOptions()).but(on_source_failure="partial")
        return base

    def _execute(self, sql: str) -> None:
        def run_query() -> None:
            result = self.gis.query(sql, self._options())
            self.last_result = result
            if not result.complete:
                self._write("!! PARTIAL RESULT — excluded sources:")
                for source, reason in sorted(result.excluded_sources.items()):
                    self._write(f"!!   {source}: {reason}")
            self._write(result.format_table())
            tail = "" if result.complete else "; PARTIAL"
            self._write(
                f"({len(result)} rows; {result.metrics.simulated_ms:.1f} ms "
                f"simulated network{tail})"
            )

        self._guard(run_query)

    def _guard(self, action) -> None:
        try:
            action()
        except GISError as error:
            self._write(f"error: {error}")

    def _write(self, text: str, newline: bool = True) -> None:
        self.out.write(text + ("\n" if newline else ""))
        self.out.flush()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive shell over a GIS federation.",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="build the TPC-H-lite demo federation (6 sources, 8 tables)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="demo data scale factor (default 0.5)",
    )
    parser.add_argument(
        "--config",
        metavar="FILE",
        help="build the federation from a JSON config (see repro.config)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="trace every query and keep FILE updated in the Chrome "
        "trace_event format (open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="log queries slower than MS wall-clock milliseconds",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="rows per columnar page between operators "
        "(default: planner default; 1 = row-at-a-time)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="abort queries that exceed MS wall-clock milliseconds",
    )
    parser.add_argument(
        "--partial-results",
        action="store_true",
        help="degrade to partial results (with the missing sources "
        "reported) when a source stays down, instead of failing",
    )
    parser.add_argument(
        "--serve",
        nargs="?",
        const="127.0.0.1:7432",
        metavar="HOST:PORT",
        help="run the multi-tenant query service instead of the REPL "
        "(default 127.0.0.1:7432; a 'serve' config section supplies "
        "tenants/quotas — see docs/serving.md)",
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=None,
        metavar="N",
        help="executor threads for --serve (overrides config)",
    )
    parser.add_argument(
        "--client",
        metavar="HOST:PORT",
        help="connect to a running query service as a client REPL "
        "instead of embedding a mediator",
    )
    parser.add_argument(
        "--tenant",
        default="default",
        metavar="NAME",
        help="tenant id for --client (default: 'default')",
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="tenant token for --client, when the server requires one",
    )
    arguments = parser.parse_args(argv)

    if arguments.client:
        return _client_main(arguments, parser)

    if arguments.batch_size is not None:
        from .errors import PlanError

        try:
            # Validate through the same gate every other entry point uses.
            PlannerOptions(batch_size=arguments.batch_size)
        except PlanError as error:
            parser.error(str(error))

    if arguments.config:
        from .config import load_config

        sys.stderr.write(f"loading federation from {arguments.config}...\n")
        gis = load_config(arguments.config)
    elif arguments.demo:
        from .workloads import build_federation

        sys.stderr.write("building demo federation...\n")
        gis = build_federation(scale=arguments.scale).gis
    else:
        sys.stderr.write(
            "note: empty federation (use --demo for sample data); "
            "register sources programmatically for real use\n"
        )
        gis = GlobalInformationSystem()

    if arguments.trace_out:
        gis.obs.trace_path = arguments.trace_out
        gis.obs.tracer.enable()
    if arguments.slow_query_ms > 0:
        gis.obs.slow_queries.threshold_ms = float(arguments.slow_query_ms)

    if arguments.serve is not None:
        return _serve_main(gis, arguments, parser)

    repl = Repl(gis)
    if arguments.batch_size is not None:
        repl.batch = arguments.batch_size
    if arguments.deadline_ms > 0:
        repl.deadline_ms = float(arguments.deadline_ms)
    if arguments.partial_results:
        repl.partial = True
    try:
        repl.run(sys.stdin, interactive=sys.stdin.isatty())
    except KeyboardInterrupt:
        pass
    return 0


def _parse_address(text: str, parser) -> "tuple[str, int]":
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"expected HOST:PORT, got {text!r}")
    return host, int(port_text)


def _serve_main(gis: GlobalInformationSystem, arguments, parser) -> int:
    """Run the query service until interrupted (``--serve``)."""
    import json
    import time as time_module

    from .serve import QueryServer
    from .serve.session import ServerConfig

    config = ServerConfig()
    if arguments.config:
        from .config import build_server_config

        with open(arguments.config) as handle:
            raw = json.load(handle)
        if "serve" in raw:
            config = build_server_config(raw["serve"])
    host, port = _parse_address(arguments.serve, parser)
    config.host, config.port = host, port
    if arguments.serve_workers is not None:
        if arguments.serve_workers < 1:
            parser.error("--serve-workers must be >= 1")
        config.max_workers = arguments.serve_workers
    if gis.plan_cache.capacity == 0:
        # Serving means repeat traffic; an unset plan cache would waste it.
        gis.plan_cache.capacity = 256

    server = QueryServer(gis, config)
    bound_host, bound_port = server.start_background()
    sys.stderr.write(
        f"query service listening on {bound_host}:{bound_port} "
        f"({config.max_workers} workers); Ctrl-C to stop\n"
    )
    try:
        while True:
            time_module.sleep(3600)
    except KeyboardInterrupt:
        sys.stderr.write("shutting down...\n")
    finally:
        server.stop_background()
    return 0


def _client_main(arguments, parser) -> int:
    """Line-oriented client REPL against a remote query service."""
    from .serve import ServeClient

    host, port = _parse_address(arguments.client, parser)
    try:
        client = ServeClient(
            host, port, tenant=arguments.tenant, token=arguments.token
        )
    except (OSError, GISError) as error:
        sys.stderr.write(f"cannot connect to {host}:{port}: {error}\n")
        return 1
    defaults = {}
    if arguments.deadline_ms > 0:
        defaults["deadline_ms"] = float(arguments.deadline_ms)
    if arguments.partial_results:
        defaults["partial"] = True
    if defaults:
        client.set_defaults(**defaults)
    interactive = sys.stdin.isatty()
    out = sys.stdout
    if interactive:
        out.write(f"connected to {host}:{port} as tenant "
                  f"{arguments.tenant!r}\ngis> ")
        out.flush()
    buffer: List[str] = []
    try:
        for line in sys.stdin:
            stripped = line.strip()
            if stripped in ("\\quit", "\\q", "\\exit"):
                break
            if stripped:
                buffer.append(stripped)
                if stripped.endswith(";"):
                    sql = " ".join(buffer).rstrip(";").strip()
                    buffer = []
                    if sql:
                        _run_remote(client, sql, out)
            if interactive:
                out.write("...> " if buffer else "gis> ")
                out.flush()
        if buffer:
            _run_remote(client, " ".join(buffer), out)
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    return 0


def _run_remote(client, sql: str, out: IO[str]) -> None:
    """Execute one remote statement and print a small result table."""
    try:
        result = client.query(sql)
    except GISError as error:
        out.write(f"error: {error}\n")
        return
    if not result.complete:
        out.write("!! PARTIAL RESULT — excluded sources:\n")
        for source, reason in sorted(result.excluded_sources.items()):
            out.write(f"!!   {source}: {reason}\n")
    widths = [len(name) for name in result.column_names]
    rendered = [
        ["NULL" if cell is None else str(cell) for cell in row]
        for row in result.rows
    ]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = " | ".join(
        name.ljust(widths[i]) for i, name in enumerate(result.column_names)
    )
    out.write(header + "\n")
    out.write("-+-".join("-" * width for width in widths) + "\n")
    for row in rendered:
        out.write(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            + "\n"
        )
    metrics = result.metrics
    out.write(
        f"({len(result.rows)} rows; wall {metrics.get('wall_ms', 0.0):.1f} ms; "
        f"plan cache {'hit' if metrics.get('plan_cache_hit') else 'miss'})\n"
    )

"""Declarative federation configuration.

Build a whole mediator — sources, links, global tables, replicas,
integration views, planner options — from one plain dictionary (or a JSON
file), instead of imperative registration calls::

    gis = build_from_config({
        "sources": {
            "erp": {
                "type": "sqlite",
                "tables": {
                    "ORDERS": {
                        "columns": [["oid", "INT"], ["total", "FLOAT"]],
                        "rows": [[1, 9.5], [2, 100.0]],
                    }
                },
                "link": {"latency_ms": 30, "bandwidth_bytes_per_s": 2e6},
            }
        },
        "tables": [{"name": "orders", "source": "erp",
                    "remote_table": "ORDERS"}],
        "views": {"big": "SELECT * FROM orders WHERE total > 50"},
        "analyze": True,
    })

Source ``type`` values: ``sqlite`` (optional ``path`` for a database file;
tables with ``rows`` are created, tables without are declared over existing
native tables), ``memory``, ``csv`` (requires ``directory``; ``rows``
are materialized as files when given), ``keyvalue`` (each table needs a
``key`` column), ``rest`` (optional ``page_rows``).

A top-level ``scheduler`` section configures parallel fragment execution
and the robustness envelope (see ``docs/parallel_execution.md``)::

    "scheduler": {
        "max_parallel_fragments": 8,
        "max_parallel_per_source": 2,
        "fragment_timeout_ms": 2000,
        "retry": {"retries": 3, "backoff_ms": 50, "multiplier": 2,
                  "max_ms": 5000, "jitter": 0.2},
        "circuit_breaker": {"failure_threshold": 5, "reset_ms": 30000}
    }

A top-level ``observability`` section arms the tracing/metrics subsystem
(see ``docs/observability.md``)::

    "observability": {
        "trace": true,                       # record spans for every query
        "trace_out": "trace.json",           # Chrome trace_event file
        "trace_jsonl": "spans.jsonl",        # streaming span log
        "metrics": true,                     # aggregate the metrics registry
        "slow_query_ms": 250,                # slow-query log threshold
        "slow_query_log": "slow.jsonl"       # optional slow-query file
    }

A top-level ``tail`` section arms the tail-tolerance machinery —
adaptive no-progress timeouts, hedged fragment fetches, and
health-aware replica routing (see ``docs/resilience.md``)::

    "tail": {
        "adaptive_timeout": true,            # clamp(k * p99, floor, ceiling)
        "timeout_multiplier": 3.0,
        "timeout_floor_ms": 50.0,
        "timeout_ceiling_ms": 30000.0,
        "hedge": true,                       # duplicate slow fetches
        "hedge_delay_ms": 50.0,              # cold-start hedge delay
        "hedge_quantile": 0.95,              # observed delay once warm
        "health_routing": true               # prefer healthy replicas
    }

A top-level ``resilience`` section sets the query deadline and the
partial-result policy, and a ``faults`` section scripts deterministic
per-source failures (see ``docs/resilience.md``)::

    "resilience": {
        "deadline_ms": 5000,                 # per-query budget; 0 = off
        "on_source_failure": "partial"       # or "fail" (the default)
    },
    "faults": {
        "seed": 7,
        "sources": {
            "erp": {"fail_connect": 2, "latency_ms": 50.0},
            "crm": {"fail_every": 3, "recover_after": 5}
        }
    }

A top-level ``plan_cache_size`` enables the plan-shape cache (queries
differing only in literals share one optimized plan), and a ``cache``
section arms the semantic fragment cache and declares materialized views
(see ``docs/caching.md``)::

    "plan_cache_size": 256,
    "cache": {
        "fragment_bytes": 1048576,           # LRU budget; 0 = off
        "materialized_views": {
            "top_accounts": {
                "sql": "SELECT id, total FROM accounts WHERE total > 1000",
                "staleness_ms": 60000
            }
        }
    }

A ``catalog`` section arms catalog persistence: every catalog operation
is appended to a JSONL journal (compacted snapshots every
``snapshot_interval`` records), and with ``recover_on_start`` a restarted
mediator replays the journal back to the exact pre-crash catalog instead
of re-applying this file's declarative sections (see
``docs/catalog.md``)::

    "catalog": {
        "journal": "catalog.jsonl",
        "snapshot_interval": 64,
        "recover_on_start": true
    }

A ``serve`` section configures the multi-tenant query service
(``--serve``; see ``docs/serving.md``)::

    "serve": {
        "host": "127.0.0.1",
        "port": 7432,
        "max_workers": 8,
        "default_max_concurrent": 2,
        "default_max_queued": 16,
        "require_known_tenant": false,
        "max_retained_results": 32,
        "tenants": {
            "analytics": {"token": "s3cret", "max_concurrent": 4,
                          "max_queued": 32}
        }
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .catalog.schema import TableSchema, schema_from_pairs
from .core.mediator import GlobalInformationSystem
from .core.planner import PlannerOptions
from .errors import CatalogError, PlanError
from .sources import (
    CsvSource,
    FaultPlan,
    KeyValueSource,
    MemorySource,
    NetworkLink,
    RestSource,
    SQLiteSource,
)


def load_config(path: str) -> GlobalInformationSystem:
    """Build a federation from a JSON config file."""
    with open(path) as handle:
        return build_from_config(json.load(handle))


def build_from_config(config: Dict[str, Any]) -> GlobalInformationSystem:
    """Build a federation from a configuration dictionary (see module doc)."""
    options = None
    if "options" in config:
        options = PlannerOptions(**config["options"])
    fragment_retries = int(config.get("fragment_retries", 0))
    if "scheduler" in config:
        options, fragment_retries = _apply_scheduler_config(
            config["scheduler"], options, fragment_retries
        )
    if "resilience" in config:
        options = _apply_resilience_config(config["resilience"], options)
    if "tail" in config:
        options = _apply_tail_config(config["tail"], options)
    observability = None
    if "observability" in config:
        observability = _build_observability(config["observability"])
    faults = None
    if "faults" in config:
        faults = FaultPlan.from_config(config["faults"])
    fragment_cache_bytes = 0
    materialized_specs: Dict[str, Dict[str, Any]] = {}
    if "cache" in config:
        fragment_cache_bytes, materialized_specs = _parse_cache_config(
            config["cache"]
        )
    journal_path, snapshot_interval, recover = None, 64, False
    if "catalog" in config:
        journal_path, snapshot_interval, recover = _parse_catalog_config(
            config["catalog"]
        )
    gis = GlobalInformationSystem(
        options=options,
        fragment_retries=fragment_retries,
        result_cache_size=int(config.get("result_cache_size", 0)),
        observability=observability,
        faults=faults,
        plan_cache_size=int(config.get("plan_cache_size", 0)),
        fragment_cache_bytes=fragment_cache_bytes,
        catalog_journal_path=journal_path,
        catalog_snapshot_interval=snapshot_interval,
        catalog_recover=recover,
    )
    if gis.catalog_recovery is not None and gis.catalog_recovery.get("recovered"):
        # The journal replayed the exact pre-crash catalog; it is the
        # system of record now, so the declarative sections below (which
        # describe the *initial* federation) are not re-applied on top.
        return gis

    sources = config.get("sources")
    if not isinstance(sources, dict) or not sources:
        raise CatalogError("config requires a non-empty 'sources' mapping")
    for name, spec in sources.items():
        adapter = _build_source(name, spec)
        link = _build_link(spec.get("link"))
        gis.register_source(name, adapter, link=link, spec=spec)

    for entry in config.get("tables", []):
        gis.register_table(
            entry["name"],
            source=entry["source"],
            remote_table=entry.get("remote_table"),
            column_map=entry.get("column_map"),
        )
    for entry in config.get("replicas", []):
        gis.register_replica(
            entry["name"],
            source=entry["source"],
            remote_table=entry.get("remote_table"),
            column_map=entry.get("column_map"),
        )
    for name, sql in config.get("views", {}).items():
        gis.create_view(name, sql)

    if config.get("analyze", False):
        gis.analyze()
    # Materialized views last: their initial snapshots execute real queries
    # and want statistics/views in place.
    for name, view_spec in materialized_specs.items():
        gis.create_materialized_view(
            name,
            view_spec["sql"],
            staleness_ms=view_spec.get("staleness_ms", 0.0),
        )
    return gis


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _int_option(section: str, spec: Dict[str, Any], key: str) -> Optional[int]:
    if key not in spec:
        return None
    value = spec[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise CatalogError(
            f"config: {section}{key!r} must be an integer (got {value!r})"
        )
    return value


def _float_option(section: str, spec: Dict[str, Any], key: str) -> Optional[float]:
    if key not in spec:
        return None
    value = spec[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CatalogError(
            f"config: {section}{key!r} must be a number (got {value!r})"
        )
    return float(value)


def _parse_cache_config(spec: Any):
    """Parse the declarative ``cache`` section.

    Mirrors the other sections' strictness: unknown keys are rejected so a
    typo cannot silently disable the cache.
    """
    if not isinstance(spec, dict):
        raise CatalogError("config: 'cache' must be an object")
    _check_keys("cache", spec, ("fragment_bytes", "materialized_views"))
    budget = _int_option("cache.", spec, "fragment_bytes") or 0
    if budget < 0:
        raise CatalogError(
            f"config: cache.fragment_bytes must be >= 0 (got {budget})"
        )
    materialized = spec.get("materialized_views", {})
    if not isinstance(materialized, dict):
        raise CatalogError("config: cache.materialized_views must be an object")
    for name, view_spec in materialized.items():
        if not isinstance(view_spec, dict):
            raise CatalogError(
                f"config: cache.materialized_views[{name!r}] must be an object"
            )
        _check_keys(
            f"cache.materialized_views[{name!r}]",
            view_spec,
            ("sql", "staleness_ms"),
        )
        if not isinstance(view_spec.get("sql"), str):
            raise CatalogError(
                f"config: cache.materialized_views[{name!r}] requires "
                f"a 'sql' string"
            )
        _float_option(
            f"cache.materialized_views[{name!r}].", view_spec, "staleness_ms"
        )
    return budget, materialized


def _parse_catalog_config(spec: Any):
    """Parse the declarative ``catalog`` section (persistence & recovery).

    Mirrors the other sections' strictness: unknown keys are rejected so
    a typo cannot silently run without a journal.
    """
    if not isinstance(spec, dict):
        raise CatalogError("config: 'catalog' must be an object")
    _check_keys(
        "catalog", spec, ("journal", "snapshot_interval", "recover_on_start")
    )
    journal = spec.get("journal")
    if not isinstance(journal, str) or not journal:
        raise CatalogError(
            f"config: catalog.'journal' must be a non-empty path string "
            f"(got {journal!r})"
        )
    interval = _int_option("catalog.", spec, "snapshot_interval")
    if interval is None:
        interval = 64
    elif interval < 1:
        raise CatalogError(
            f"config: catalog.snapshot_interval must be >= 1 (got {interval})"
        )
    recover = spec.get("recover_on_start", False)
    if not isinstance(recover, bool):
        raise CatalogError(
            f"config: catalog.'recover_on_start' must be a boolean "
            f"(got {recover!r})"
        )
    return journal, interval, recover


def _check_keys(section: str, spec: Dict[str, Any], allowed: tuple) -> None:
    unknown = sorted(set(spec) - set(allowed))
    if unknown:
        raise CatalogError(
            f"unknown config key(s) {unknown} in {section}; "
            f"allowed: {sorted(allowed)}"
        )


def _apply_scheduler_config(
    spec: Any, options: Optional[PlannerOptions], fragment_retries: int
):
    """Fold the declarative ``scheduler`` section into planner options.

    Returns the updated ``(options, fragment_retries)`` pair. Every key is
    validated with a specific error message; unknown keys are rejected so
    typos cannot silently disable a knob.
    """
    if not isinstance(spec, dict):
        raise CatalogError(
            f"'scheduler' config must be a mapping (got {type(spec).__name__})"
        )
    _check_keys(
        "scheduler",
        spec,
        (
            "max_parallel_fragments",
            "max_parallel_per_source",
            "fragment_timeout_ms",
            "retry",
            "circuit_breaker",
        ),
    )
    changes: Dict[str, Any] = {}
    for key, reader in (
        ("max_parallel_fragments", _int_option),
        ("max_parallel_per_source", _int_option),
        ("fragment_timeout_ms", _float_option),
    ):
        value = reader("", spec, key)
        if value is not None:
            changes[key] = value

    retry = spec.get("retry", {})
    if not isinstance(retry, dict):
        raise CatalogError(
            f"scheduler 'retry' config must be a mapping "
            f"(got {type(retry).__name__})"
        )
    _check_keys(
        "scheduler.retry", retry,
        ("retries", "backoff_ms", "multiplier", "max_ms", "jitter"),
    )
    retries = _int_option("retry.", retry, "retries")
    if retries is not None:
        if retries < 0:
            raise CatalogError(
                f"scheduler config: retry.'retries' must be >= 0 (got {retries})"
            )
        fragment_retries = retries
    for config_key, option_key, reader in (
        ("backoff_ms", "retry_backoff_ms", _float_option),
        ("multiplier", "retry_backoff_multiplier", _float_option),
        ("max_ms", "retry_backoff_max_ms", _float_option),
        ("jitter", "retry_jitter", _float_option),
    ):
        value = reader("retry.", retry, config_key)
        if value is not None:
            changes[option_key] = value

    breaker = spec.get("circuit_breaker", {})
    if not isinstance(breaker, dict):
        raise CatalogError(
            f"scheduler 'circuit_breaker' config must be a mapping "
            f"(got {type(breaker).__name__})"
        )
    _check_keys(
        "scheduler.circuit_breaker", breaker, ("failure_threshold", "reset_ms")
    )
    threshold = _int_option("circuit_breaker.", breaker, "failure_threshold")
    if threshold is not None:
        changes["breaker_failure_threshold"] = threshold
    reset_ms = _float_option("circuit_breaker.", breaker, "reset_ms")
    if reset_ms is not None:
        changes["breaker_reset_ms"] = reset_ms

    if changes:
        try:
            options = (options or PlannerOptions()).but(**changes)
        except PlanError as exc:
            raise CatalogError(f"invalid scheduler config: {exc}") from exc
    return options, fragment_retries


def _apply_resilience_config(
    spec: Any, options: Optional[PlannerOptions]
) -> PlannerOptions:
    """Fold the declarative ``resilience`` section into planner options.

    Mirrors the scheduler section's strictness: every key is validated and
    unknown keys are rejected.
    """
    if not isinstance(spec, dict):
        raise CatalogError(
            f"'resilience' config must be a mapping (got {type(spec).__name__})"
        )
    _check_keys("resilience", spec, ("deadline_ms", "on_source_failure"))
    changes: Dict[str, Any] = {}
    deadline = _float_option("resilience.", spec, "deadline_ms")
    if deadline is not None:
        changes["deadline_ms"] = deadline
    if "on_source_failure" in spec:
        mode = spec["on_source_failure"]
        if not isinstance(mode, str):
            raise CatalogError(
                "resilience config: 'on_source_failure' must be a string "
                f"(got {mode!r})"
            )
        changes["on_source_failure"] = mode
    try:
        return (options or PlannerOptions()).but(**changes)
    except PlanError as exc:
        raise CatalogError(f"invalid resilience config: {exc}") from exc


def _apply_tail_config(
    spec: Any, options: Optional[PlannerOptions]
) -> PlannerOptions:
    """Fold the declarative ``tail`` section into planner options.

    Mirrors the scheduler section's strictness: every key is validated
    and unknown keys are rejected so a typo cannot silently leave
    hedging or adaptive timeouts disarmed.
    """
    if not isinstance(spec, dict):
        raise CatalogError(
            f"'tail' config must be a mapping (got {type(spec).__name__})"
        )
    _check_keys(
        "tail",
        spec,
        (
            "adaptive_timeout",
            "timeout_multiplier",
            "timeout_floor_ms",
            "timeout_ceiling_ms",
            "hedge",
            "hedge_delay_ms",
            "hedge_quantile",
            "health_routing",
        ),
    )
    changes: Dict[str, Any] = {}
    for config_key, option_key in (
        ("adaptive_timeout", "adaptive_timeout"),
        ("hedge", "hedge_fragments"),
        ("health_routing", "health_routing"),
    ):
        if config_key in spec:
            value = spec[config_key]
            if not isinstance(value, bool):
                raise CatalogError(
                    f"tail config: {config_key!r} must be a boolean "
                    f"(got {value!r})"
                )
            changes[option_key] = value
    for key in (
        "timeout_multiplier",
        "timeout_floor_ms",
        "timeout_ceiling_ms",
        "hedge_delay_ms",
        "hedge_quantile",
    ):
        value = _float_option("tail.", spec, key)
        if value is not None:
            changes[key] = value
    try:
        return (options or PlannerOptions()).but(**changes)
    except PlanError as exc:
        raise CatalogError(f"invalid tail config: {exc}") from exc


def _build_observability(spec: Any) -> "Observability":
    """Construct the mediator's observability bundle from config.

    Mirrors the scheduler section's strictness: every key is validated and
    unknown keys are rejected so a typo cannot silently disable tracing.
    """
    from .obs import Observability

    if not isinstance(spec, dict):
        raise CatalogError(
            f"'observability' config must be a mapping (got {type(spec).__name__})"
        )
    _check_keys(
        "observability",
        spec,
        ("trace", "trace_out", "trace_jsonl", "metrics",
         "slow_query_ms", "slow_query_log"),
    )
    for key in ("trace", "metrics"):
        if key in spec and not isinstance(spec[key], bool):
            raise CatalogError(
                f"observability config: {key!r} must be a boolean "
                f"(got {spec[key]!r})"
            )
    for key in ("trace_out", "trace_jsonl", "slow_query_log"):
        if key in spec and not isinstance(spec[key], str):
            raise CatalogError(
                f"observability config: {key!r} must be a path string "
                f"(got {spec[key]!r})"
            )
    slow_ms = spec.get("slow_query_ms")
    if slow_ms is not None:
        if isinstance(slow_ms, bool) or not isinstance(slow_ms, (int, float)):
            raise CatalogError(
                "observability config: 'slow_query_ms' must be a number "
                f"(got {slow_ms!r})"
            )
        if slow_ms < 0:
            raise CatalogError(
                f"observability config: 'slow_query_ms' must be >= 0 (got {slow_ms})"
            )
    return Observability(
        trace=spec.get("trace", False),
        metrics=spec.get("metrics", False),
        slow_query_ms=slow_ms or 0.0,
        trace_path=spec.get("trace_out"),
        trace_jsonl=spec.get("trace_jsonl"),
        slow_query_path=spec.get("slow_query_log"),
    )


def _build_link(spec: Optional[Dict[str, Any]]) -> Optional[NetworkLink]:
    if spec is None:
        return None
    return NetworkLink(
        latency_ms=float(spec.get("latency_ms", 20.0)),
        bandwidth_bytes_per_s=float(spec.get("bandwidth_bytes_per_s", 1e6)),
        message_overhead_bytes=int(spec.get("message_overhead_bytes", 64)),
    )


def _table_parts(name: str, table_spec: Any) -> Dict[str, Any]:
    """Normalize the two table forms: a column list, or a dict with
    columns/rows/key."""
    if isinstance(table_spec, list):
        return {"columns": table_spec, "rows": None, "key": None}
    if isinstance(table_spec, dict):
        if "columns" not in table_spec:
            raise CatalogError(f"table {name!r} config needs 'columns'")
        return {
            "columns": table_spec["columns"],
            "rows": table_spec.get("rows"),
            "key": table_spec.get("key"),
        }
    raise CatalogError(f"table {name!r} config must be a list or mapping")


def _schema_of(name: str, parts: Dict[str, Any]) -> TableSchema:
    pairs = [(column, type_name) for column, type_name in parts["columns"]]
    return schema_from_pairs(name, pairs)


def _build_source(name: str, spec: Dict[str, Any]):
    source_type = spec.get("type")
    tables: Dict[str, Any] = spec.get("tables", {})
    if source_type == "sqlite":
        adapter = SQLiteSource(name, path=spec.get("path", ":memory:"))
        for table_name, table_spec in tables.items():
            parts = _table_parts(table_name, table_spec)
            schema = _schema_of(table_name, parts)
            if parts["rows"] is not None:
                adapter.load_table(table_name, schema, parts["rows"])
            else:
                adapter.declare_table(table_name, schema)
        return adapter
    if source_type == "memory":
        adapter = MemorySource(name)
        for table_name, table_spec in tables.items():
            parts = _table_parts(table_name, table_spec)
            adapter.add_table(
                table_name, _schema_of(table_name, parts), parts["rows"] or []
            )
        return adapter
    if source_type == "csv":
        directory = spec.get("directory")
        if not directory:
            raise CatalogError(f"csv source {name!r} requires 'directory'")
        schemas: Dict[str, TableSchema] = {}
        for table_name, table_spec in tables.items():
            parts = _table_parts(table_name, table_spec)
            schema = _schema_of(table_name, parts)
            schemas[table_name] = schema
            if parts["rows"] is not None:
                CsvSource.write_table(directory, table_name, schema, parts["rows"])
        return CsvSource(name, directory, schemas,
                         page_rows=int(spec.get("page_rows", 4096)))
    if source_type == "keyvalue":
        adapter = KeyValueSource(name, page_rows=int(spec.get("page_rows", 512)))
        for table_name, table_spec in tables.items():
            parts = _table_parts(table_name, table_spec)
            if not parts["key"]:
                raise CatalogError(
                    f"keyvalue table {table_name!r} requires a 'key' column"
                )
            adapter.add_table(
                table_name,
                _schema_of(table_name, parts),
                parts["key"],
                parts["rows"] or [],
            )
        return adapter
    if source_type == "rest":
        adapter = RestSource(name, page_rows=int(spec.get("page_rows", 100)))
        for table_name, table_spec in tables.items():
            parts = _table_parts(table_name, table_spec)
            adapter.add_table(
                table_name, _schema_of(table_name, parts), parts["rows"] or []
            )
        return adapter
    raise CatalogError(
        f"source {name!r} has unknown type {source_type!r} "
        "(expected sqlite|memory|csv|keyvalue|rest)"
    )


def build_server_config(spec: Any) -> "ServerConfig":
    """Parse the declarative ``serve`` section into a ServerConfig.

    Mirrors the other sections' strictness: unknown keys are rejected so
    a typo cannot silently run the server with default quotas.
    """
    from .serve.session import ServerConfig, TenantConfig

    if not isinstance(spec, dict):
        raise CatalogError(
            f"'serve' config must be a mapping (got {type(spec).__name__})"
        )
    _check_keys(
        "serve",
        spec,
        (
            "host",
            "port",
            "max_workers",
            "default_max_concurrent",
            "default_max_queued",
            "require_known_tenant",
            "max_retained_results",
            "tenants",
        ),
    )
    if "host" in spec and not isinstance(spec["host"], str):
        raise CatalogError(
            f"serve config: 'host' must be a string (got {spec['host']!r})"
        )
    if "require_known_tenant" in spec and not isinstance(
        spec["require_known_tenant"], bool
    ):
        raise CatalogError(
            "serve config: 'require_known_tenant' must be a boolean "
            f"(got {spec['require_known_tenant']!r})"
        )
    kwargs: Dict[str, Any] = {}
    for key in (
        "port", "max_workers", "default_max_concurrent",
        "default_max_queued", "max_retained_results",
    ):
        value = _int_option("serve.", spec, key)
        if value is not None:
            kwargs[key] = value
    if "host" in spec:
        kwargs["host"] = spec["host"]
    if "require_known_tenant" in spec:
        kwargs["require_known_tenant"] = spec["require_known_tenant"]

    tenants: Dict[str, TenantConfig] = {}
    tenant_specs = spec.get("tenants", {})
    if not isinstance(tenant_specs, dict):
        raise CatalogError(
            f"serve config: 'tenants' must be a mapping "
            f"(got {type(tenant_specs).__name__})"
        )
    for name, tenant_spec in tenant_specs.items():
        if not isinstance(tenant_spec, dict):
            raise CatalogError(
                f"serve config: tenant {name!r} must be a mapping "
                f"(got {type(tenant_spec).__name__})"
            )
        _check_keys(
            f"serve.tenants.{name}", tenant_spec,
            ("token", "max_concurrent", "max_queued"),
        )
        token = tenant_spec.get("token")
        if token is not None and not isinstance(token, str):
            raise CatalogError(
                f"serve config: tenant {name!r} 'token' must be a string "
                f"(got {token!r})"
            )
        tenant_kwargs: Dict[str, Any] = {"name": name, "token": token}
        for key in ("max_concurrent", "max_queued"):
            value = _int_option(f"serve.tenants.{name}.", tenant_spec, key)
            if value is not None:
                tenant_kwargs[key] = value
        try:
            tenants[name] = TenantConfig(**tenant_kwargs)
        except ValueError as exc:
            raise CatalogError(
                f"serve config: tenant {name!r}: {exc}"
            ) from exc
    if tenants:
        kwargs["tenants"] = tenants
    try:
        return ServerConfig(**kwargs)
    except ValueError as exc:
        raise CatalogError(f"invalid serve config: {exc}") from exc

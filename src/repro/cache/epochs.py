"""Per-source epochs: the invalidation clock for everything cached.

The mediator cannot see writes happening inside autonomous component
systems, so cache invalidation is driven by the events it *can* see:
table/replica/view registration, ``ANALYZE``, and explicit
``notify_source_changed`` calls from adapters or operators. Each such
event bumps a monotonically increasing per-source epoch.

Invalidation is lazy, the same pattern :class:`~repro.core.prepared.PlanCache`
uses for its global epoch: nothing walks cache entries on a bump. A
fragment-cache entry remembers the epoch it was filled under and dies the
next time it is looked up with a newer epoch; a materialized view
remembers a whole epoch *snapshot* and compares it on substitution.

For bounded-stale reads (``WITH STALENESS <ms>``) the tracker also
records *when* each bump happened, so a view can answer "how long ago did
this source first move past my snapshot?" — the staleness window anchors
at the first invalidating bump, not the most recent one.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Bump timestamps remembered per source; older bumps age out (a view
#: whose snapshot predates the window is simply treated as unbounded-old).
HISTORY_LIMIT = 64


class SourceEpochs:
    """Thread-safe per-source epoch counters with bump-time history.

    A source that has never been bumped is at epoch 0, so snapshots taken
    before a source is first touched still compare correctly.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._epochs: Dict[str, int] = {}
        self._history: Dict[str, Deque[Tuple[int, float]]] = {}
        self.bumps = 0

    def current(self, source: str) -> int:
        """The source's current epoch (0 if never bumped)."""
        with self._lock:
            return self._epochs.get(source.lower(), 0)

    def snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of every known source's epoch.

        Sources absent from the snapshot are implicitly at epoch 0 —
        compare with ``snapshot.get(source, 0)``.
        """
        with self._lock:
            return dict(self._epochs)

    def bump(self, source: str) -> int:
        """Advance one source's epoch; returns the new value."""
        key = source.lower()
        with self._lock:
            epoch = self._epochs.get(key, 0) + 1
            self._epochs[key] = epoch
            history = self._history.setdefault(key, deque(maxlen=HISTORY_LIMIT))
            history.append((epoch, self._clock()))
            self.bumps += 1
            return epoch

    def bump_all(self) -> None:
        """Advance every known source (conservative catalog-wide change)."""
        with self._lock:
            now = self._clock()
            for key in list(self._epochs):
                epoch = self._epochs[key] + 1
                self._epochs[key] = epoch
                history = self._history.setdefault(
                    key, deque(maxlen=HISTORY_LIMIT)
                )
                history.append((epoch, now))
                self.bumps += 1

    def first_bump_after(self, source: str, snapshot_epoch: int) -> Optional[float]:
        """Clock time of the first bump past ``snapshot_epoch``, or None.

        None means the source has not moved past the snapshot — the
        snapshot is still exactly current. A bump that aged out of the
        bounded history returns 0.0 (infinitely long ago), which errs on
        the side of treating the snapshot as too stale to serve.
        """
        key = source.lower()
        with self._lock:
            if self._epochs.get(key, 0) <= snapshot_epoch:
                return None
            for epoch, at in self._history.get(key, ()):
                if epoch > snapshot_epoch:
                    return at
            return 0.0

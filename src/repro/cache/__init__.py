"""Semantic caching for the federated mediator.

Three cooperating pieces (see docs/caching.md for the full layering):

* :class:`~repro.catalog.versions.CatalogVersions` — the per-source
  invalidation clock everything else keys freshness off. It lives on the
  live catalog now (one invalidation authority for plans, results,
  fragments, and snapshots alike); the old ``SourceEpochs`` name stays
  re-exported here for compatibility.
* :class:`~repro.cache.fragments.FragmentCache` — complete pushed
  fragment results, served back on exact canonical-plan match or
  predicate subsumption with a mediator-side residual filter.
* :class:`~repro.cache.views.MaterializedViewRegistry` — declarative
  materialized GAV views (``CREATE MATERIALIZED VIEW ... WITH STALENESS
  <ms>``) substituted at bind time while fresh.
"""

from ..catalog.versions import CatalogVersions as SourceEpochs
from .fragments import FragmentCache, FragmentCacheEntry
from .keys import (
    FragmentShape,
    canonical_fragment_key,
    fragment_shape,
    shape_contains,
)
from .views import MaterializedView, MaterializedViewRegistry

__all__ = [
    "FragmentCache",
    "FragmentCacheEntry",
    "FragmentShape",
    "MaterializedView",
    "MaterializedViewRegistry",
    "SourceEpochs",
    "canonical_fragment_key",
    "fragment_shape",
    "shape_contains",
]

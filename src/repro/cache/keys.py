"""Fragment canonicalization and predicate subsumption.

Two related capabilities live here:

* :func:`canonical_fragment_key` — a deterministic, value-complete text
  serialization of a pushed fragment plan. Two fragments that would send
  the identical request to the identical source serialize identically,
  even though every parse mints fresh :class:`RelColumn` identities —
  columns are numbered by first appearance (``$0``, ``$1``, ...) instead
  of by ``column_id``. ``None`` means the plan contains a node the
  serializer does not understand; such fragments are simply not cached.

* :class:`FragmentShape` — a semantic summary of the common single-scan
  fragment shapes (``Scan``, ``Filter(Scan)``, ``Project[refs](Scan)``,
  ``Project[refs](Filter(Scan))``): which native columns are shipped and
  what each conjunct of the pushed predicate constrains. Shapes power
  *subsumption*: :func:`shape_contains` decides whether every row a new
  fragment could return is already present in a cached fragment's result,
  so the cached pages (plus a mediator-side residual filter) can answer
  the new fragment without touching the network.

Subsumption is deliberately conservative. Constraints it reasons about
are per-column intervals (``<``, ``<=``, ``>``, ``>=``, ``=``,
``BETWEEN``), value sets (``=``, ``IN``), and nullability (``IS [NOT]
NULL``); every other conjunct is *opaque* and matches only by exact
canonical text. WHERE-clause three-valued logic makes the interval rules
sound for NULL-bearing columns: a comparison conjunct evaluates to NULL
(treated as false) for a NULL operand, so a range constraint implies
``IS NOT NULL`` over the selected rows. Any comparison between
incomparable Python values abandons the check — "don't know" always
means "don't serve from cache".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..sql import ast
from ..sql.ast import COMPARISON_OPS
from ..core.fragments import Fragment
from ..core.logical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    LimitOp,
    LogicalPlan,
    ProjectOp,
    ScanOp,
    SortOp,
    UnionOp,
    ValuesOp,
)

__all__ = [
    "FragmentShape",
    "canonical_fragment_key",
    "fragment_shape",
    "shape_contains",
]

#: ValuesOp fragments larger than this are not worth keying (the key
#: would embed every literal row).
_MAX_VALUES_ROWS = 256


class _Uncacheable(Exception):
    """Raised internally when a plan/expression defies serialization."""


# ---------------------------------------------------------------------------
# expression serialization
# ---------------------------------------------------------------------------


def _literal(expr: ast.Literal) -> str:
    dtype = getattr(expr.dtype, "value", expr.dtype)
    return f"lit<{dtype}>({expr.value!r})"


def _serialize_expr(expr: ast.Expr, ref: Callable[[Any], str]) -> str:
    """Render a bound expression with ``ref`` naming each RelColumn."""
    if isinstance(expr, ast.Literal):
        return _literal(expr)
    if isinstance(expr, ast.BoundRef):
        return ref(expr.column)
    if isinstance(expr, ast.BinaryOp):
        left = _serialize_expr(expr.left, ref)
        right = _serialize_expr(expr.right, ref)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op} {_serialize_expr(expr.operand, ref)})"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(_serialize_expr(arg, ref) for arg in expr.args)
        star = "*" if expr.star else args
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{star})"
    if isinstance(expr, ast.Case):
        parts = []
        if expr.operand is not None:
            parts.append(_serialize_expr(expr.operand, ref))
        for when, then in expr.whens:
            parts.append(
                f"WHEN {_serialize_expr(when, ref)} "
                f"THEN {_serialize_expr(then, ref)}"
            )
        if expr.else_result is not None:
            parts.append(f"ELSE {_serialize_expr(expr.else_result, ref)}")
        return f"CASE[{' '.join(parts)}]"
    if isinstance(expr, ast.Cast):
        dtype = getattr(expr.dtype, "value", expr.dtype)
        return f"CAST({_serialize_expr(expr.operand, ref)} AS {dtype})"
    if isinstance(expr, ast.InList):
        items = ", ".join(_serialize_expr(item, ref) for item in expr.items)
        negated = "NOT " if expr.negated else ""
        return f"({_serialize_expr(expr.operand, ref)} {negated}IN [{items}])"
    if isinstance(expr, ast.IsNull):
        negated = "NOT " if expr.negated else ""
        return f"({_serialize_expr(expr.operand, ref)} IS {negated}NULL)"
    if isinstance(expr, ast.Between):
        negated = "NOT " if expr.negated else ""
        return (
            f"({_serialize_expr(expr.operand, ref)} {negated}BETWEEN "
            f"{_serialize_expr(expr.low, ref)} AND "
            f"{_serialize_expr(expr.high, ref)})"
        )
    raise _Uncacheable(type(expr).__name__)


# ---------------------------------------------------------------------------
# canonical fragment keys (exact matching, any pushable shape)
# ---------------------------------------------------------------------------


class _ColumnNumbering:
    """First-appearance positional numbering of RelColumn identities."""

    def __init__(self) -> None:
        self._ids: Dict[int, str] = {}

    def assign(self, column: Any) -> str:
        name = self._ids.get(column.column_id)
        if name is None:
            name = f"${len(self._ids)}"
            self._ids[column.column_id] = name
        return name

    def ref(self, column: Any) -> str:
        name = self._ids.get(column.column_id)
        if name is None:
            # A reference to a column no node introduced — defensive; such
            # a plan is not self-contained and must not be keyed.
            raise _Uncacheable("unbound column reference")
        return name


def _serialize_plan(plan: LogicalPlan, numbering: _ColumnNumbering) -> str:
    if isinstance(plan, ScanOp):
        mapping = plan.effective_mapping
        cols = ",".join(
            f"{mapping.remote_column(col.name)}={numbering.assign(col)}"
            for col in plan.columns
        )
        return (
            f"Scan(src={mapping.source.lower()},"
            f"tab={mapping.remote_table.lower()},cols=[{cols}])"
        )
    if isinstance(plan, FilterOp):
        child = _serialize_plan(plan.child, numbering)
        pred = _serialize_expr(plan.predicate, numbering.ref)
        return f"Filter({pred})[{child}]"
    if isinstance(plan, ProjectOp):
        child = _serialize_plan(plan.child, numbering)
        exprs = ",".join(
            f"{_serialize_expr(expr, numbering.ref)}"
            f"->{numbering.assign(col)}"
            for expr, col in zip(plan.expressions, plan.columns)
        )
        return f"Project([{exprs}])[{child}]"
    if isinstance(plan, AggregateOp):
        child = _serialize_plan(plan.child, numbering)
        groups = ",".join(
            f"{_serialize_expr(expr, numbering.ref)}"
            f"->{numbering.assign(col)}"
            for expr, col in zip(plan.group_expressions, plan.group_columns)
        )
        calls = ",".join(
            "{fn}({distinct}{arg})->{out}".format(
                fn=call.function,
                distinct="DISTINCT " if call.distinct else "",
                arg=(
                    _serialize_expr(call.argument, numbering.ref)
                    if call.argument is not None
                    else "*"
                ),
                out=numbering.assign(col),
            )
            for call, col in zip(plan.aggregates, plan.aggregate_columns)
        )
        return f"Agg(groups=[{groups}],calls=[{calls}])[{child}]"
    if isinstance(plan, SortOp):
        child = _serialize_plan(plan.child, numbering)
        keys = ",".join(
            f"{_serialize_expr(key, numbering.ref)}:{'asc' if asc else 'desc'}"
            for key, asc in plan.keys
        )
        return f"Sort([{keys}])[{child}]"
    if isinstance(plan, LimitOp):
        child = _serialize_plan(plan.child, numbering)
        return f"Limit({plan.limit},{plan.offset})[{child}]"
    if isinstance(plan, DistinctOp):
        return f"Distinct[{_serialize_plan(plan.child, numbering)}]"
    if isinstance(plan, UnionOp):
        inputs = ",".join(
            _serialize_plan(child, numbering) for child in plan.inputs
        )
        for col in plan.columns:
            numbering.assign(col)
        return f"Union(all={plan.all})[{inputs}]"
    if type(plan) is ValuesOp:
        if len(plan.rows) > _MAX_VALUES_ROWS:
            raise _Uncacheable("values fragment too large to key")
        for col in plan.columns:
            numbering.assign(col)
        return f"Values({plan.rows!r})"
    # JoinOp comes after the leaf types so numbering sees left before right.
    from ..core.logical import JoinOp

    if isinstance(plan, JoinOp):
        left = _serialize_plan(plan.left, numbering)
        right = _serialize_plan(plan.right, numbering)
        cond = (
            _serialize_expr(plan.condition, numbering.ref)
            if plan.condition is not None
            else "TRUE"
        )
        return f"Join({plan.kind},{cond})[{left};{right}]"
    raise _Uncacheable(type(plan).__name__)


def canonical_fragment_key(fragment: Fragment) -> Optional[str]:
    """A deterministic text key for a pushed fragment, or ``None``.

    The key embeds the target source, native table/column vocabulary,
    plan structure, and every literal (dtype-tagged), and numbers columns
    by first appearance — so equal requests collide across independent
    plans while anything value- or structure-different cannot.
    """
    numbering = _ColumnNumbering()
    try:
        body = _serialize_plan(fragment.plan, numbering)
        # The output projection is part of the contract: same body with a
        # different output column order is a different result.
        outputs = ",".join(
            numbering.ref(col) for col in fragment.output_columns
        )
    except _Uncacheable:
        return None
    except Exception:  # defensive: an odd plan must never break execution
        return None
    return f"{fragment.source_name.lower()}|{body}|out=[{outputs}]"


# ---------------------------------------------------------------------------
# single-scan fragment shapes (subsumption)
# ---------------------------------------------------------------------------


@dataclass
class ColumnConstraint:
    """The merged constraint one predicate places on one native column.

    Satisfying rows have the column (a) NULL iff ``is_null``; (b) in
    ``eq_values`` when that set is present; (c) inside the
    ``lo``/``hi`` interval when bounds are present. Bounds, value sets,
    and ``not_null`` each imply the column is non-NULL (3VL: a NULL
    operand fails the conjunct).
    """

    lo: Any = None
    lo_strict: bool = False
    hi: Any = None
    hi_strict: bool = False
    eq_values: Optional[FrozenSet[Any]] = None
    not_null: bool = False
    is_null: bool = False

    @property
    def has_bounds(self) -> bool:
        return self.lo is not None or self.hi is not None

    @property
    def guarantees_not_null(self) -> bool:
        return self.not_null or self.has_bounds or self.eq_values is not None

    def add_lower(self, value: Any, strict: bool) -> None:
        if self.lo is None or value > self.lo or (
            value == self.lo and strict and not self.lo_strict
        ):
            self.lo, self.lo_strict = value, strict

    def add_upper(self, value: Any, strict: bool) -> None:
        if self.hi is None or value < self.hi or (
            value == self.hi and strict and not self.hi_strict
        ):
            self.hi, self.hi_strict = value, strict

    def add_values(self, values: FrozenSet[Any]) -> None:
        if self.eq_values is None:
            self.eq_values = values
        else:
            self.eq_values = self.eq_values & values

    def admits(self, value: Any) -> bool:
        """Does a non-NULL ``value`` satisfy the interval and value set?"""
        if self.eq_values is not None and value not in self.eq_values:
            return False
        if self.lo is not None:
            if value < self.lo or (value == self.lo and self.lo_strict):
                return False
        if self.hi is not None:
            if value > self.hi or (value == self.hi and self.hi_strict):
                return False
        return True


@dataclass
class FragmentShape:
    """Semantic summary of a single-scan pushed fragment.

    ``columns`` are the *native* names of the fragment's output columns,
    in output order; ``native_by_column_id`` translates every scan
    RelColumn (usable by residual-filter layouts); ``constraints`` /
    ``opaque`` decompose the pushed predicate per the module docstring.
    ``predicate`` is the original bound predicate (or None) — the
    residual the mediator re-applies over a superset entry's pages.
    """

    source: str
    table: str
    columns: Tuple[str, ...]
    dtypes: Tuple[Any, ...]
    native_by_column_id: Dict[int, str]
    predicate: Optional[ast.Expr]
    constraints: Dict[str, ColumnConstraint]
    opaque: FrozenSet[str]

    @property
    def table_key(self) -> Tuple[str, str]:
        return (self.source, self.table)


def _is_pure_projection(project: ProjectOp) -> bool:
    return all(
        isinstance(expr, ast.BoundRef) for expr in project.expressions
    )


def _comparison_constraint(
    constraint: ColumnConstraint, op: str, value: Any
) -> bool:
    """Fold ``col <op> value`` into ``constraint``; False = unsupported."""
    if value is None:
        return False  # `col > NULL` never selects; leave it opaque
    if op == "=":
        constraint.add_values(frozenset((value,)))
    elif op == ">":
        constraint.add_lower(value, strict=True)
    elif op == ">=":
        constraint.add_lower(value, strict=False)
    elif op == "<":
        constraint.add_upper(value, strict=True)
    elif op == "<=":
        constraint.add_upper(value, strict=False)
    else:
        return False  # `<>` carries no useful containment structure
    return True


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _analyze_conjunct(
    conjunct: ast.Expr,
    native: Callable[[Any], str],
    constraints: Dict[str, ColumnConstraint],
) -> bool:
    """Fold one conjunct into per-column constraints; False = opaque."""

    def constraint_for(column: Any) -> ColumnConstraint:
        return constraints.setdefault(native(column), ColumnConstraint())

    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in COMPARISON_OPS:
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, ast.Literal) and isinstance(right, ast.BoundRef):
            left, right, op = right, left, _FLIPPED.get(op, "")
        if (
            isinstance(left, ast.BoundRef)
            and isinstance(right, ast.Literal)
            and op
        ):
            return _comparison_constraint(
                constraint_for(left.column), op, right.value
            )
        return False
    if isinstance(conjunct, ast.Between) and not conjunct.negated:
        if (
            isinstance(conjunct.operand, ast.BoundRef)
            and isinstance(conjunct.low, ast.Literal)
            and isinstance(conjunct.high, ast.Literal)
            and conjunct.low.value is not None
            and conjunct.high.value is not None
        ):
            constraint = constraint_for(conjunct.operand.column)
            constraint.add_lower(conjunct.low.value, strict=False)
            constraint.add_upper(conjunct.high.value, strict=False)
            return True
        return False
    if isinstance(conjunct, ast.InList) and not conjunct.negated:
        if isinstance(conjunct.operand, ast.BoundRef) and all(
            isinstance(item, ast.Literal) and item.value is not None
            for item in conjunct.items
        ):
            constraint_for(conjunct.operand.column).add_values(
                frozenset(item.value for item in conjunct.items)
            )
            return True
        return False
    if isinstance(conjunct, ast.IsNull):
        if isinstance(conjunct.operand, ast.BoundRef):
            constraint = constraint_for(conjunct.operand.column)
            if conjunct.negated:
                constraint.not_null = True
            else:
                constraint.is_null = True
            return True
        return False
    return False


def fragment_shape(fragment: Fragment) -> Optional[FragmentShape]:
    """Analyze a fragment into a :class:`FragmentShape`, or ``None``.

    Only the pure single-scan shapes qualify; anything else (joins,
    aggregates, computed projections, sorts/limits) falls back to
    exact-key caching.
    """
    try:
        return _fragment_shape(fragment)
    except _Uncacheable:
        return None
    except Exception:  # pragma: no cover - defensive, mirrors key path
        return None


def _fragment_shape(fragment: Fragment) -> Optional[FragmentShape]:
    plan = fragment.plan
    project: Optional[ProjectOp] = None
    if isinstance(plan, ProjectOp):
        if not _is_pure_projection(plan):
            return None
        project = plan
        plan = plan.child
    predicate: Optional[ast.Expr] = None
    if isinstance(plan, FilterOp):
        predicate = plan.predicate
        plan = plan.child
    if not isinstance(plan, ScanOp):
        return None
    scan = plan
    mapping = scan.effective_mapping
    native_by_column_id = {
        col.column_id: mapping.remote_column(col.name) for col in scan.columns
    }
    if project is not None:
        # A pure projection mints fresh output RelColumns; alias each to
        # the native name of the scan column its BoundRef carries so the
        # fragment's output columns resolve below.
        for expr, col in zip(project.expressions, project.columns):
            name = native_by_column_id.get(expr.column.column_id)
            if name is None:
                return None
            native_by_column_id[col.column_id] = name

    def native(column: Any) -> str:
        name = native_by_column_id.get(column.column_id)
        if name is None:
            raise _Uncacheable("predicate references a non-scan column")
        return name

    outputs: List[str] = []
    dtypes: List[Any] = []
    for column in fragment.output_columns:
        name = native_by_column_id.get(column.column_id)
        if name is None:
            return None
        outputs.append(name)
        dtypes.append(column.dtype)

    constraints: Dict[str, ColumnConstraint] = {}
    opaque: List[str] = []
    for conjunct in ast.conjuncts(predicate):
        if not _analyze_conjunct(conjunct, native, constraints):
            opaque.append(_serialize_expr(conjunct, lambda c: native(c)))
    return FragmentShape(
        source=fragment.source_name.lower(),
        table=mapping.remote_table.lower(),
        columns=tuple(outputs),
        dtypes=tuple(dtypes),
        native_by_column_id=native_by_column_id,
        predicate=predicate,
        constraints=constraints,
        opaque=frozenset(opaque),
    )


def _constraint_implies(
    new: Optional[ColumnConstraint], cached: ColumnConstraint
) -> bool:
    """Does the new fragment's constraint on a column imply the cached one?"""
    if cached.is_null:
        # Cached kept only NULL rows; new must also select only NULLs.
        return new is not None and new.is_null
    if new is not None and new.is_null:
        # New keeps only NULL rows; fine iff cached kept them too (it did
        # not demand non-NULL) — an is_null mixed with bounds selects
        # nothing, which is trivially contained.
        if new.guarantees_not_null:
            return True
        return not cached.guarantees_not_null
    if cached.guarantees_not_null:
        if new is None or not new.guarantees_not_null:
            return False
    if cached.eq_values is not None:
        if new is None or new.eq_values is None:
            return False
        if not new.eq_values <= cached.eq_values:
            return False
    if cached.has_bounds:
        assert new is not None
        if new.eq_values is not None:
            return all(cached.admits(value) for value in new.eq_values)
        if cached.lo is not None:
            if new.lo is None:
                return False
            if new.lo < cached.lo:
                return False
            if new.lo == cached.lo and cached.lo_strict and not new.lo_strict:
                return False
        if cached.hi is not None:
            if new.hi is None:
                return False
            if new.hi > cached.hi:
                return False
            if new.hi == cached.hi and cached.hi_strict and not new.hi_strict:
                return False
    return True


def shape_contains(cached: FragmentShape, new: FragmentShape) -> bool:
    """Is every row the new fragment selects present in the cached result?

    Requires the same source-native table, the new fragment's needed
    columns (outputs *and* predicate references) all shipped by the
    cached fragment, and the cached predicate implied by the new one —
    conjunct by conjunct, with opaque conjuncts matching only verbatim.
    """
    if cached.table_key != new.table_key:
        return False
    available = set(cached.columns)
    if not set(new.columns) <= available:
        return False
    if new.predicate is not None:
        referenced = {
            new.native_by_column_id.get(column.column_id)
            for column in ast.referenced_columns(new.predicate)
        }
        if not referenced <= available:
            return False
    if not cached.opaque <= new.opaque:
        return False
    try:
        for name, constraint in cached.constraints.items():
            if not _constraint_implies(new.constraints.get(name), constraint):
                return False
    except TypeError:
        # Incomparable literal types (e.g. str vs int) — refuse the hit.
        return False
    return True


def residual_plan(
    cached: FragmentShape, new: FragmentShape
) -> Tuple[Optional[ast.Expr], Dict[int, int], List[int]]:
    """What a subsumed probe must do to the cached pages.

    Returns ``(predicate, layout, projection)``: the new fragment's full
    predicate to re-apply (None when it had no filter), a
    ``column_id -> cached position`` layout for compiling it, and the
    cached-page positions of the new fragment's output columns in order.
    Only valid after :func:`shape_contains` returned True.
    """
    position = {name: i for i, name in enumerate(cached.columns)}
    layout = {
        column_id: position[name]
        for column_id, name in new.native_by_column_id.items()
        if name in position
    }
    projection = [position[name] for name in new.columns]
    return new.predicate, layout, projection

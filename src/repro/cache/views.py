"""Materialized GAV views with epoch-based staleness.

A materialized view is an ordinary integration view (its SQL lives in the
catalog and binds/expands normally) *plus* a mediator-held row snapshot.
When the snapshot is **fresh**, the analyzer substitutes it for the view
expansion — the query plan contains a
:class:`~repro.core.logical.MaterializedRowsOp` leaf and touches no
source at all for that view.

Freshness is defined against the per-source epoch clock
(:class:`~repro.catalog.versions.CatalogVersions`): the snapshot records the
epoch of every source it read from. A view is fresh while every such
source is still at its snapshot epoch; past that, a ``WITH STALENESS
<ms>`` bound lets it keep serving until the *first* invalidating bump is
more than ``staleness_ms`` old — bounded-stale reads, anchored at the
moment the data first moved, not at the last time anyone asked.

The registry stores state only; executing the defining SELECT (for
``CREATE`` and ``REFRESH``) is the mediator's job, which hands the rows
in via :meth:`store_snapshot`. Substitution can be *suspended*
per-thread so snapshot builds always read base sources (a materialized
view must never be snapshotted from another view's possibly-stale
snapshot).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from ..catalog.versions import CatalogVersions
from ..errors import CatalogError

__all__ = ["MaterializedView", "MaterializedViewRegistry"]


class MaterializedView:
    """One materialized view's snapshot and freshness metadata."""

    __slots__ = (
        "name", "select_sql", "staleness_ms", "column_names", "dtypes",
        "rows", "sources", "epoch_snapshot", "refreshed_at",
        "refresh_count", "hits",
    )

    def __init__(
        self,
        name: str,
        select_sql: str,
        staleness_ms: float,
        column_names: List[str],
        dtypes: List[Any],
    ) -> None:
        self.name = name
        self.select_sql = select_sql
        self.staleness_ms = staleness_ms
        self.column_names = list(column_names)
        self.dtypes = list(dtypes)
        self.rows: List[Tuple[Any, ...]] = []
        self.sources: List[str] = []
        self.epoch_snapshot: Dict[str, int] = {}
        self.refreshed_at = 0.0
        self.refresh_count = 0
        self.hits = 0


class MaterializedViewRegistry:
    """Thread-safe registry of materialized views, attached to the catalog
    as ``catalog.materialized`` so the analyzer can consult it at bind
    time without an import cycle."""

    def __init__(self, epochs: CatalogVersions, clock=time.monotonic) -> None:
        self.epochs = epochs
        self._clock = clock
        self._lock = threading.Lock()
        self._views: Dict[str, MaterializedView] = {}
        self._local = threading.local()
        self.hits = 0
        self.stale_substitutions = 0

    # -- registration --------------------------------------------------------

    def register(
        self,
        name: str,
        select_sql: str,
        staleness_ms: float,
        column_names: List[str],
        dtypes: List[Any],
    ) -> MaterializedView:
        key = name.lower()
        with self._lock:
            if key in self._views:
                raise CatalogError(
                    f"materialized view {name!r} is already registered"
                )
            view = MaterializedView(
                name, select_sql, staleness_ms, column_names, dtypes
            )
            self._views[key] = view
            return view

    def store_snapshot(
        self,
        name: str,
        rows: List[Tuple[Any, ...]],
        sources: List[str],
        epoch_snapshot: Dict[str, int],
    ) -> None:
        """Install a freshly executed snapshot (CREATE or REFRESH)."""
        view = self.get(name)
        with self._lock:
            view.rows = list(rows)
            view.sources = [source.lower() for source in sources]
            view.epoch_snapshot = {
                source.lower(): epoch_snapshot.get(source.lower(), 0)
                for source in view.sources
            }
            view.refreshed_at = self._clock()
            view.refresh_count += 1

    def get(self, name: str) -> MaterializedView:
        view = self._views.get(name.lower())
        if view is None:
            raise CatalogError(f"unknown materialized view: {name!r}")
        return view

    def has(self, name: str) -> bool:
        return name.lower() in self._views

    def drop(self, name: str) -> None:
        with self._lock:
            if self._views.pop(name.lower(), None) is None:
                raise CatalogError(f"unknown materialized view: {name!r}")

    def names(self) -> List[str]:
        with self._lock:
            return [view.name for view in self._views.values()]

    # -- substitution --------------------------------------------------------

    @contextmanager
    def suspended(self):
        """Disable substitution on this thread (snapshot builds)."""
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        try:
            yield
        finally:
            self._local.depth = depth

    @property
    def is_suspended(self) -> bool:
        return getattr(self._local, "depth", 0) > 0

    def substitute(
        self, name: str
    ) -> Optional[Tuple[List[Tuple[Any, ...]], List[str], List[Any]]]:
        """The snapshot to splice in for a view reference, or ``None``.

        None means: not a materialized view, substitution suspended on
        this thread, or the snapshot is too stale to serve — the caller
        falls back to normal view expansion.
        """
        if self.is_suspended:
            return None
        view = self._views.get(name.lower())
        if view is None:
            return None
        with self._lock:
            if not self._fresh(view):
                self.stale_substitutions += 1
                return None
            view.hits += 1
            self.hits += 1
            return view.rows, view.column_names, view.dtypes

    def fresh(self, name: str) -> bool:
        view = self.get(name)
        with self._lock:
            return self._fresh(view)

    def _fresh(self, view: MaterializedView) -> bool:
        """Fresh = every source at its snapshot epoch, or within the
        staleness window of its first invalidating bump."""
        if view.refresh_count == 0:
            return False
        for source in view.sources:
            snapshot = view.epoch_snapshot.get(source, 0)
            if self.epochs.current(source) == snapshot:
                continue
            if view.staleness_ms <= 0:
                return False
            first_bump = self.epochs.first_bump_after(source, snapshot)
            if first_bump is None:
                continue
            age_ms = (self._clock() - first_bump) * 1000.0
            if age_ms > view.staleness_ms:
                return False
        return True

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "views": len(self._views),
                "hits": self.hits,
                "stale_substitutions": self.stale_substitutions,
                "entries": [
                    {
                        "name": view.name,
                        "rows": len(view.rows),
                        "staleness_ms": view.staleness_ms,
                        "refreshes": view.refresh_count,
                        "hits": view.hits,
                        "sources": list(view.sources),
                    }
                    for view in self._views.values()
                ],
            }

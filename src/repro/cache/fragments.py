"""The semantic fragment cache: complete fragment results, reusable.

Entries are keyed by the fragment's canonical plan text (which embeds the
target source — see :mod:`repro.cache.keys`) and store the *complete*
page stream a fragment produced, as plain row tuples with the original
page boundaries preserved. A probe serves a fragment in two ways:

* **exact hit** — the canonical key matches; the stored pages replay
  verbatim.
* **subsumed hit** — no exact entry, but a cached single-scan fragment
  over the same native table provably contains every row the new
  fragment selects (:func:`~repro.cache.keys.shape_contains`). The
  stored pages replay through a mediator-side *residual* — the new
  fragment's full predicate recompiled against the cached page layout —
  plus a column projection onto the new fragment's output order.

Replayed pages bypass the network entirely: nothing is charged, network
counters honestly report zero shipped bytes for the fragment, and the
pages feed the exact same normalization pipeline
(:meth:`~repro.core.pages.Page.retyped` / ``plain`` + ``split_batches``)
a cold fetch would, so rows *and dtypes* are bit-identical to cold
execution.

Admission is strict — the PR 5 invariant "partial results are never
cached" is enforced structurally:

* the fill wrapper only admits when the underlying page stream finishes
  cleanly; any exception (source failure, deadline, early consumer
  abandonment) aborts collection;
* the entry is stamped with the per-source epoch snapshot taken when the
  query's execution context was built (strictly before any fetch), and
  admission re-checks that epoch under the cache lock — a source bump
  mid-flight means the collected pages may straddle the change, so they
  are dropped (``rejected_stale``);
* lookups ignore (and lazily delete) entries whose epoch is no longer
  current.

The cache is byte-budgeted LRU: entry sizes use the same wire sizer the
network accounting uses, so "bytes cached" and "bytes saved" speak the
same units as ``bytes_shipped``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.expressions import compile_predicate
from .keys import (
    FragmentShape,
    canonical_fragment_key,
    fragment_shape,
    residual_plan,
    shape_contains,
)

__all__ = ["FragmentCache", "FragmentCacheEntry"]

Row = Tuple[Any, ...]


class FragmentCacheEntry:
    """One cached fragment result."""

    __slots__ = ("key", "source", "shape", "pages", "bytes", "epoch", "hits")

    def __init__(
        self,
        key: str,
        source: str,
        shape: Optional[FragmentShape],
        pages: List[List[Row]],
        nbytes: int,
        epoch: int,
    ) -> None:
        self.key = key
        self.source = source
        self.shape = shape
        self.pages = pages
        self.bytes = nbytes
        self.epoch = epoch
        self.hits = 0


class _Decision:
    """What the executor should do for one exchange probe."""

    __slots__ = ("replay", "fill")

    def __init__(self, replay=None, fill=None) -> None:
        self.replay = replay
        self.fill = fill


class FragmentCache:
    """Thread-safe byte-budgeted LRU of complete fragment results.

    ``budget_bytes`` 0 disables the cache entirely (every probe is a
    cheap no-op); the mediator then never attaches it to execution
    contexts.
    """

    def __init__(self, budget_bytes: int, epochs) -> None:
        if budget_bytes < 0:
            raise ValueError(
                f"fragment cache budget must be >= 0 (got {budget_bytes})"
            )
        self.budget_bytes = budget_bytes
        self.epochs = epochs
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, FragmentCacheEntry]" = OrderedDict()
        self._by_table: Dict[Tuple[str, str], Set[str]] = {}
        self._bytes = 0
        self.hits = 0
        self.subsumed_hits = 0
        self.misses = 0
        self.admissions = 0
        self.evictions = 0
        self.rejected_stale = 0
        self.rejected_oversize = 0

    @property
    def enabled(self) -> bool:
        return self.budget_bytes > 0

    # -- probes --------------------------------------------------------------

    def begin(self, exchange, ctx, allow_replay: bool = True) -> Optional[_Decision]:
        """Decide how one exchange interacts with the cache.

        Returns a decision whose ``replay`` (when set) is the page
        iterator to use *instead of* fetching, and whose ``fill`` (when
        set) must wrap the fetched page iterator to collect an entry.
        ``allow_replay=False`` (a prestarted exchange whose worker is
        already fetching) restricts the interaction to filling.
        """
        if not self.enabled:
            return None
        fragment = exchange.fragment
        key = canonical_fragment_key(fragment)
        if key is None:
            return None
        source = fragment.source_name.lower()
        epoch = self.epochs.current(source)
        shape = fragment_shape(fragment)
        entry: Optional[FragmentCacheEntry] = None
        residual = None
        if allow_replay:
            with self._lock:
                entry = self._live_entry(key, epoch)
                if entry is None and shape is not None:
                    entry = self._find_superset(shape, epoch)
                    if entry is not None:
                        residual = residual_plan(entry.shape, shape)
                if entry is not None:
                    self._entries.move_to_end(entry.key)
                    entry.hits += 1
                    if residual is None:
                        self.hits += 1
                    else:
                        self.subsumed_hits += 1
                else:
                    self.misses += 1
        if entry is not None:
            ctx.add_metric("fragment_cache_hits", 1)
            span = ctx.trace_child(
                f"cache:{source}", "cache",
                hit=True, subsumed=residual is not None, key=key,
            )
            span.end()
            return _Decision(
                replay=self._replay(entry, residual, exchange, ctx)
            )
        if allow_replay:
            ctx.add_metric("fragment_cache_misses", 1)
        # Fill under the epoch snapshot taken at context construction —
        # strictly before any fetch began — so a bump that lands anywhere
        # mid-query invalidates the admission.
        admit_epoch = ctx.epoch_snapshot.get(source, 0)
        sizer = getattr(exchange, "_sizer", None)
        return _Decision(
            fill=lambda pages: self._fill(
                pages, key, source, shape, admit_epoch, sizer
            )
        )

    def would_serve(self, fragment) -> bool:
        """Peek (no statistics, no replay): could this fragment be served
        from cache right now? Used to keep the scheduler from prestarting
        a fetch the cache is about to answer."""
        if not self.enabled:
            return False
        key = canonical_fragment_key(fragment)
        if key is None:
            return False
        epoch = self.epochs.current(fragment.source_name.lower())
        with self._lock:
            if self._live_entry(key, epoch) is not None:
                return True
            shape = fragment_shape(fragment)
            return (
                shape is not None
                and self._find_superset(shape, epoch) is not None
            )

    # -- replay / fill -------------------------------------------------------

    def _replay(
        self, entry: FragmentCacheEntry, residual, exchange, ctx
    ) -> Iterator[List[Row]]:
        """Yield the entry's pages (through the residual when subsumed),
        crediting ``fragment_cache_bytes_saved`` with the wire bytes a
        cold execution of the probing fragment would have shipped."""
        sizer = getattr(exchange, "_sizer", None)
        if residual is None:
            for rows in entry.pages:
                if sizer is not None:
                    ctx.add_metric("fragment_cache_bytes_saved", sizer(rows))
                yield rows
            return
        predicate, layout, projection = residual
        keep = (
            compile_predicate(predicate, layout)
            if predicate is not None
            else None
        )
        identity = projection == list(range(len(entry.shape.columns)))
        for rows in entry.pages:
            if keep is not None:
                rows = [row for row in rows if keep(row)]
            if not identity:
                rows = [tuple(row[i] for i in projection) for row in rows]
            if rows:
                if sizer is not None:
                    ctx.add_metric("fragment_cache_bytes_saved", sizer(rows))
                yield rows

    def _fill(
        self,
        pages: Iterable[Any],
        key: str,
        source: str,
        shape: Optional[FragmentShape],
        admit_epoch: int,
        sizer,
    ) -> Iterator[Any]:
        """Pass pages through, collecting a candidate entry; admit only on
        clean exhaustion of the underlying stream."""
        collected: Optional[List[List[Row]]] = []
        nbytes = 0
        for page in pages:
            if collected is not None:
                rows = [tuple(row) for row in page]
                if sizer is not None:
                    nbytes += sizer(rows)
                if nbytes > self.budget_bytes:
                    collected = None  # larger than the whole budget
            if collected is not None:
                collected.append(rows)
            yield page
        if collected is None:
            with self._lock:
                self.rejected_oversize += 1
            return
        self._admit(key, source, shape, collected, nbytes, admit_epoch)

    def _admit(
        self,
        key: str,
        source: str,
        shape: Optional[FragmentShape],
        pages: List[List[Row]],
        nbytes: int,
        epoch: int,
    ) -> None:
        with self._lock:
            if self.epochs.current(source) != epoch:
                # The source moved mid-flight; the pages may straddle the
                # change — never admissible.
                self.rejected_stale += 1
                return
            if key in self._entries:
                self._remove(key)
            entry = FragmentCacheEntry(key, source, shape, pages, nbytes, epoch)
            self._entries[key] = entry
            self._bytes += nbytes
            if shape is not None:
                self._by_table.setdefault(shape.table_key, set()).add(key)
            self.admissions += 1
            while self._bytes > self.budget_bytes and len(self._entries) > 1:
                victim = next(iter(self._entries))
                if victim == key:
                    break
                self._remove(victim)
                self.evictions += 1

    # -- internals (call with the lock held) ---------------------------------

    def _live_entry(self, key: str, epoch: int) -> Optional[FragmentCacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.epoch != epoch:
            self._remove(key)
            return None
        return entry

    def _find_superset(
        self, shape: FragmentShape, epoch: int
    ) -> Optional[FragmentCacheEntry]:
        keys = self._by_table.get(shape.table_key)
        if not keys:
            return None
        stale: List[str] = []
        found: Optional[FragmentCacheEntry] = None
        for key in reversed(self._entries):  # most recently used first
            if key not in keys:
                continue
            entry = self._entries[key]
            if entry.epoch != epoch:
                stale.append(key)
                continue
            if shape_contains(entry.shape, shape):
                found = entry
                break
        for key in stale:
            self._remove(key)
        return found

    def _remove(self, key: str) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.bytes
        if entry.shape is not None:
            keys = self._by_table.get(entry.shape.table_key)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_table[entry.shape.table_key]

    # -- maintenance ---------------------------------------------------------

    def evict_source(self, source: str) -> int:
        """Eagerly drop every entry filled from one source.

        Epoch bumps invalidate lazily (entries die on next lookup); this
        is the stronger form for ``unregister_source``, where the entries'
        memory should not outlive the source itself. Returns the count.
        """
        key = source.lower()
        with self._lock:
            victims = [k for k, e in self._entries.items() if e.source == key]
            for k in victims:
                self._remove(k)
            return len(victims)

    def evict_table(self, source: str, remote_table: str) -> int:
        """Eagerly drop the entries cached for one native table (used when
        a table is dropped or altered). Returns the count."""
        table_key = (source.lower(), remote_table.lower())
        with self._lock:
            victims = list(self._by_table.get(table_key, ()))
            for k in victims:
                self._remove(k)
            return len(victims)

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._by_table.clear()
            self._bytes = 0
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """A consistent snapshot of the cache's effectiveness counters."""
        with self._lock:
            lookups = self.hits + self.subsumed_hits + self.misses
            return {
                "budget_bytes": self.budget_bytes,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "subsumed_hits": self.subsumed_hits,
                "misses": self.misses,
                "admissions": self.admissions,
                "evictions": self.evictions,
                "rejected_stale": self.rejected_stale,
                "rejected_oversize": self.rejected_oversize,
                "hit_rate": (
                    (self.hits + self.subsumed_hits) / lookups if lookups else 0.0
                ),
            }

"""Key-value source: answers equality lookups on a designated key column.

Models an ISAM file, IMS segment, or modern KV service: the only native
"query" is *get by key* (single key or a batch). Anything else degenerates
to a full enumeration that the mediator filters itself — the pushdown
planner knows this from :attr:`SourceCapabilities.key_equality_only` and
plans accordingly (and it is exactly the shape a semijoin bind-list can
exploit).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..catalog.schema import TableSchema
from ..datatypes import coerce_value
from ..errors import CapabilityError, DuplicateObjectError, SourceError
import itertools

from ..core.fragments import Fragment
from ..core.logical import FilterOp, ScanOp
from ..core.pages import Page, paginate_rows, typed_column
from ..sql import ast
from .base import Adapter, SourceCapabilities


class KeyValueSource(Adapter):
    """Tables stored as ``key -> row`` dictionaries.

    Example::

        kv = KeyValueSource("profiles")
        kv.add_table("user_profile", schema, key_column="user_id", rows=rows)
    """

    def __init__(self, name: str, page_rows: int = 512) -> None:
        super().__init__(name)
        self._tables: Dict[str, TableSchema] = {}
        self._key_columns: Dict[str, str] = {}
        self._stores: Dict[str, Dict[Any, Tuple[Any, ...]]] = {}
        self._page_rows = page_rows

    def add_table(
        self,
        native_name: str,
        schema: TableSchema,
        key_column: str,
        rows: Sequence[Sequence[Any]],
    ) -> None:
        """Load a table; ``key_column`` values must be unique and non-null."""
        if native_name in self._tables:
            raise DuplicateObjectError(
                f"source {self.name!r} already has table {native_name!r}"
            )
        key_index = schema.index_of(key_column)
        store: Dict[Any, Tuple[Any, ...]] = {}
        for row in rows:
            coerced = tuple(
                coerce_value(value, column.dtype)
                for value, column in zip(row, schema.columns)
            )
            key = coerced[key_index]
            if key is None:
                raise SourceError(self.name, "key column values must be non-null")
            if key in store:
                raise SourceError(self.name, f"duplicate key {key!r}")
            store[key] = coerced
        self._tables[native_name] = schema
        self._key_columns[native_name] = schema.columns[key_index].name
        self._stores[native_name] = store

    # -- Adapter interface ---------------------------------------------------------

    def tables(self) -> Dict[str, TableSchema]:
        return dict(self._tables)

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(
            filters=True,
            predicate_ops=frozenset({"=", "IN", "AND"}),
            in_list_max=10_000,
            key_equality_only=dict(self._key_columns),
            page_rows=self._page_rows,
        )

    def scan(self, native_table: str) -> Iterator[Tuple[Any, ...]]:
        store = self._stores.get(native_table)
        if store is None:
            self._native_schema(native_table)  # raises uniformly
            return
        yield from store.values()

    def row_count(self, native_table: str) -> Optional[int]:
        store = self._stores.get(native_table)
        return len(store) if store is not None else None

    def lookup(self, native_table: str, keys: Sequence[Any]) -> Iterator[Tuple[Any, ...]]:
        """Native batched get-by-key."""
        store = self._stores.get(native_table)
        if store is None:
            raise CapabilityError(
                f"source {self.name!r} has no table {native_table!r}"
            )
        for key in keys:
            row = store.get(key)
            if row is not None:
                yield row

    def execute(self, fragment: Fragment) -> Iterator[Tuple[Any, ...]]:
        plan = fragment.plan
        if isinstance(plan, ScanOp):
            yield from self._scan_global(plan)
            return
        if isinstance(plan, FilterOp) and isinstance(plan.child, ScanOp):
            scan = plan.child
            keys = self._extract_keys(plan.predicate, scan)
            mapping = scan.effective_mapping
            assert mapping is not None
            indices = self._reorder_indices(scan)
            for row in self.lookup(mapping.remote_table, keys):
                yield tuple(row[i] for i in indices)
            return
        raise CapabilityError(
            f"source {self.name!r} only executes key lookups and full scans"
        )

    def execute_pages(self, fragment: Fragment, page_rows: int) -> Iterator[Page]:
        """Paged execution returning native columnar pages.

        Fast path for bare enumerations: the store's row list is sliced
        and transposed straight into :class:`Page` column vectors.
        Key-lookup fragments drain page-granular chunks of the lookup
        stream instead (hit counts are data-dependent, so slicing keys up
        front could yield partial pages mid-stream and break the page
        contract). Both paths follow the contract: full pages, then
        exactly one final partial — possibly empty — page.
        """
        page_rows = max(page_rows, 1)
        plan = fragment.plan
        # Subclasses that override execute() (fault-injection doubles,
        # instrumented sources) must keep seeing every call: take the slow
        # path through their execute() rather than slicing stored rows.
        overridden = type(self).execute is not KeyValueSource.execute
        if not overridden and isinstance(plan, ScanOp):
            mapping = plan.effective_mapping
            if mapping is not None and plan.table.schema is not None:
                store = self._stores.get(mapping.remote_table)
                if store is None:
                    self._native_schema(mapping.remote_table)  # raises uniformly
                    store = {}
                rows = list(store.values())
                indices = self._reorder_indices(plan)
                native_schema = self._native_schema(mapping.remote_table)
                identity = indices == list(range(len(native_schema.columns)))
                dtypes = [
                    native_schema.columns[i].dtype for i in indices
                ]
                full = len(rows) // page_rows
                for index in range(full + 1):
                    chunk = rows[index * page_rows : (index + 1) * page_rows]
                    if not chunk:  # final empty page keeps its width
                        yield Page([[] for _ in indices], 0)
                    elif identity:
                        yield Page(
                            [
                                typed_column(list(col), dtype)
                                for col, dtype in zip(zip(*chunk), dtypes)
                            ],
                            len(chunk),
                        )
                    else:
                        yield Page(
                            [
                                typed_column([row[i] for row in chunk], dtype)
                                for i, dtype in zip(indices, dtypes)
                            ],
                            len(chunk),
                        )
                return
        output = fragment.output_columns
        width = len(output)
        dtypes = [column.dtype for column in output]
        if overridden:
            yield from paginate_rows(
                self.execute(fragment), page_rows, width, dtypes=dtypes
            )
            return
        stream = self.execute(fragment)
        while True:
            chunk = list(itertools.islice(stream, page_rows))
            yield Page.from_rows(chunk, width, dtypes)
            if len(chunk) < page_rows:
                return

    # -- internals ---------------------------------------------------------

    def _scan_global(self, scan: ScanOp) -> Iterator[Tuple[Any, ...]]:
        mapping = scan.effective_mapping
        assert mapping is not None
        indices = self._reorder_indices(scan)
        for row in self.scan(mapping.remote_table):
            yield tuple(row[i] for i in indices)

    def _reorder_indices(self, scan: ScanOp) -> List[int]:
        mapping = scan.effective_mapping
        assert mapping is not None and scan.table.schema is not None
        native_schema = self._native_schema(mapping.remote_table)
        return [
            native_schema.index_of(mapping.remote_column(column.name))
            for column in scan.table.schema.columns
        ]

    def _extract_keys(self, predicate: ast.Expr, scan: ScanOp) -> List[Any]:
        """The key set selected by a pushed predicate.

        The pushdown planner only ships ``key = literal`` / ``key IN
        (literals)`` conjuncts; multiple conjuncts intersect.
        """
        mapping = scan.effective_mapping
        assert mapping is not None
        key_column = self._key_columns.get(mapping.remote_table)
        if key_column is None:
            raise CapabilityError(
                f"source {self.name!r} has no key for table "
                f"{mapping.remote_table!r}"
            )
        key_sets: List[set] = []
        for conjunct in ast.conjuncts(predicate):
            values = _key_values(conjunct, key_column, mapping)
            if values is None:
                raise CapabilityError(
                    f"source {self.name!r} cannot evaluate predicate "
                    f"{type(conjunct).__name__} natively"
                )
            key_sets.append(values)
        if not key_sets:
            return []
        result = set.intersection(*key_sets)
        return sorted(result, key=repr)


def _key_values(conjunct: ast.Expr, key_column: str, mapping: Any) -> Optional[set]:
    """Literal key values selected by one conjunct, or None if unsupported."""
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        sides = [conjunct.left, conjunct.right]
        for ref, literal in (sides, sides[::-1]):
            if (
                isinstance(ref, ast.BoundRef)
                and isinstance(literal, ast.Literal)
                and mapping.remote_column(ref.column.name).lower() == key_column.lower()
            ):
                return {literal.value}
        return None
    if (
        isinstance(conjunct, ast.InList)
        and not conjunct.negated
        and isinstance(conjunct.operand, ast.BoundRef)
        and mapping.remote_column(conjunct.operand.column.name).lower()
        == key_column.lower()
        and all(isinstance(item, ast.Literal) for item in conjunct.items)
    ):
        return {item.value for item in conjunct.items}  # type: ignore[union-attr]
    return None

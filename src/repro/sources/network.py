"""Deterministic wide-area network simulation.

The 1989 GIS ran over WANs whose transfer costs dominated query time; the
trade-offs this repo reproduces (pushdown, semijoins, scale-out) are driven
by the *shape* of that cost — per-message latency plus bytes over
bandwidth — not by absolute numbers. :class:`SimulatedNetwork` charges every
mediator↔source transfer against a virtual clock and keeps per-source
accounting, so experiments report identical numbers on any machine.

Latency and bandwidth defaults model a late-80s leased line upgraded to
something laptop-friendly: 20 ms round trips, 1 MB/s.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import GISError

#: Bytes of protocol overhead charged per message (headers, framing).
DEFAULT_MESSAGE_OVERHEAD = 64


@dataclass(frozen=True)
class NetworkLink:
    """Characteristics of the mediator's link to one source."""

    latency_ms: float = 20.0
    bandwidth_bytes_per_s: float = 1_000_000.0
    message_overhead_bytes: int = DEFAULT_MESSAGE_OVERHEAD

    def transfer_time_ms(self, payload_bytes: float, messages: int = 1) -> float:
        """Virtual milliseconds to move ``payload_bytes`` in ``messages``
        request/response exchanges."""
        if messages < 1:
            raise GISError("a transfer involves at least one message")
        total_bytes = payload_bytes + messages * self.message_overhead_bytes
        return self.latency_ms * messages + (total_bytes / self.bandwidth_bytes_per_s) * 1000.0


@dataclass
class TransferMetrics:
    """Accumulated traffic between the mediator and one source."""

    rows: int = 0
    bytes: float = 0.0
    messages: int = 0
    simulated_ms: float = 0.0

    def merge(self, other: "TransferMetrics") -> None:
        self.rows += other.rows
        self.bytes += other.bytes
        self.messages += other.messages
        self.simulated_ms += other.simulated_ms


class SimulatedNetwork:
    """Per-source links plus global and per-source transfer accounting.

    The executor calls :meth:`record_transfer` once per exchange page; the
    returned virtual time also accumulates into the per-source ledger, which
    benchmarks read to compute sequential (sum) and parallel (max) elapsed
    time.

    Accounting is lock-protected: the fragment scheduler's worker threads
    charge transfers concurrently (the virtual clock itself stays
    deterministic — each transfer's cost depends only on its own link and
    payload, so accumulation order does not change the totals).
    """

    def __init__(self, default_link: Optional[NetworkLink] = None) -> None:
        self._default_link = default_link or NetworkLink()
        self._links: Dict[str, NetworkLink] = {}
        self._per_source: Dict[str, TransferMetrics] = {}
        self._lock = threading.Lock()
        self.total = TransferMetrics()

    # -- configuration ---------------------------------------------------------

    def set_link(self, source_name: str, link: NetworkLink) -> None:
        """Assign a dedicated link for one source."""
        self._links[source_name.lower()] = link

    def link_for(self, source_name: str) -> NetworkLink:
        """The link used for a source (dedicated, or the default)."""
        return self._links.get(source_name.lower(), self._default_link)

    def remove_link(self, source_name: str) -> bool:
        """Drop a source's dedicated link (the source left the federation);
        True if there was one. Its transfer ledger is kept — the bytes
        really were shipped."""
        return self._links.pop(source_name.lower(), None) is not None

    # -- accounting ---------------------------------------------------------------

    def record_transfer(
        self,
        source_name: str,
        payload_bytes: float,
        rows: int,
        messages: int = 1,
        extra_latency_ms: float = 0.0,
    ) -> float:
        """Charge one transfer; returns its virtual duration in ms.

        ``extra_latency_ms`` adds that many virtual milliseconds *per
        message* on top of the link's own latency — the hook fault
        injection uses for scripted latency spikes, charged through the
        same deterministic ledgers as ordinary traffic. The default of
        0.0 keeps fault-free accounting bit-identical.
        """
        link = self.link_for(source_name)
        elapsed = link.transfer_time_ms(payload_bytes, messages)
        if extra_latency_ms > 0:
            elapsed += extra_latency_ms * messages
        metrics = TransferMetrics(
            rows=rows, bytes=payload_bytes, messages=messages, simulated_ms=elapsed
        )
        with self._lock:
            self.total.merge(metrics)
            self._per_source.setdefault(
                source_name.lower(), TransferMetrics()
            ).merge(metrics)
        return elapsed

    def per_source(self) -> Dict[str, TransferMetrics]:
        """Per-source ledgers (keys lower-cased)."""
        with self._lock:
            return dict(self._per_source)

    def parallel_elapsed_ms(self) -> float:
        """Virtual elapsed time if all sources were drained concurrently
        (critical path = the slowest source)."""
        with self._lock:
            if not self._per_source:
                return 0.0
            return max(m.simulated_ms for m in self._per_source.values())

    def reset(self) -> None:
        """Zero all counters (links stay configured)."""
        with self._lock:
            self._per_source.clear()
            self.total = TransferMetrics()

"""Compile a fragment's logical plan back into a *syntactic* SELECT.

SQL-speaking wrappers use this to hand a pushed-down fragment to their
native engine: the bound plan (RelColumn references) becomes an
:class:`~repro.sql.ast.Select` whose column references carry the source's
native table aliases and column names, ready for
:func:`~repro.sql.printer.print_statement` in the source's dialect.

The conversion is compositional — each operator wraps its child in a
derived table when it cannot be merged — which trades SQL prettiness for
unconditional correctness.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import PlanError
from ..sql import ast
from ..core.logical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    LogicalPlan,
    ProjectOp,
    RelColumn,
    ScanOp,
    SortOp,
    UnionOp,
    ValuesOp,
)

#: Resolves a scan leaf to (native table name, fn(global column) -> native column name).
ScanNaming = Callable[[ScanOp], Tuple[str, Callable[[RelColumn], str]]]


def fragment_to_statement(plan: LogicalPlan, naming: ScanNaming) -> ast.Statement:
    """Convert a fragment plan to a syntactic statement in native names.

    The statement's select list aligns positionally with
    ``plan.output_columns``.
    """
    compiler = _Compiler(naming)
    statement, _ = compiler.statement(plan)
    return statement


class _Compiler:
    def __init__(self, naming: ScanNaming) -> None:
        self._naming = naming
        self._aliases = itertools.count(1)

    def _fresh_alias(self, prefix: str = "t") -> str:
        return f"{prefix}{next(self._aliases)}"

    # -- relations ---------------------------------------------------------

    def relation(
        self, plan: LogicalPlan
    ) -> Tuple[ast.FromItem, Dict[int, ast.Expr]]:
        """A FROM item plus, for each of the plan's output columns, the
        syntactic expression that reads it."""
        if isinstance(plan, ScanOp):
            native_table, column_namer = self._naming(plan)
            alias = self._fresh_alias()
            mapping: Dict[int, ast.Expr] = {
                column.column_id: ast.ColumnRef(alias, column_namer(column))
                for column in plan.columns
            }
            return ast.TableRef(native_table, alias), mapping
        if isinstance(plan, JoinOp) and plan.kind in ("INNER", "LEFT", "CROSS"):
            left_item, left_map = self.relation(plan.left)
            right_item, right_map = self.relation(plan.right)
            merged = {**left_map, **right_map}
            condition = (
                _translate(plan.condition, merged)
                if plan.condition is not None
                else None
            )
            return ast.Join(left_item, right_item, plan.kind, condition), merged
        # Anything else becomes a derived table.
        statement, names = self.statement(plan)
        alias = self._fresh_alias("q")
        mapping = {
            column.column_id: ast.ColumnRef(alias, name)
            for column, name in zip(plan.output_columns, names)
        }
        return ast.SubqueryRef(statement, alias), mapping

    # -- statements --------------------------------------------------------

    def statement(self, plan: LogicalPlan) -> Tuple[ast.Statement, List[str]]:
        """A full statement for ``plan`` plus its output column names."""
        if isinstance(plan, UnionOp):
            if len(plan.inputs) < 2:
                return self.statement(plan.inputs[0])
            statement, names = self.statement(plan.inputs[0])
            for child in plan.inputs[1:]:
                right, _ = self.statement(child)
                statement = ast.SetOperation("UNION", statement, right, all=plan.all)
            return statement, names
        if isinstance(plan, ValuesOp):
            raise PlanError("literal VALUES cannot be pushed to a source")
        return self._select(plan)

    def _select(self, plan: LogicalPlan) -> Tuple[ast.Select, List[str]]:
        if isinstance(plan, ProjectOp):
            item, mapping = self.relation(plan.child)
            names = _output_names(plan.output_columns)
            items = [
                ast.SelectItem(_translate(expr, mapping), alias)
                for expr, alias in zip(plan.expressions, names)
            ]
            return ast.Select(items=items, from_item=item), names
        if isinstance(plan, FilterOp):
            item, mapping = self.relation(plan.child)
            names = _output_names(plan.output_columns)
            items = [
                ast.SelectItem(mapping[column.column_id], alias)
                for column, alias in zip(plan.child.output_columns, names)
            ]
            where = _translate(plan.predicate, mapping)
            return ast.Select(items=items, from_item=item, where=where), names
        if isinstance(plan, AggregateOp):
            item, mapping = self.relation(plan.child)
            names = _output_names(plan.output_columns)
            items: List[ast.SelectItem] = []
            group_exprs: List[ast.Expr] = []
            for index, expr in enumerate(plan.group_expressions):
                translated = _translate(expr, mapping)
                group_exprs.append(translated)
                items.append(ast.SelectItem(translated, names[index]))
            offset = len(plan.group_expressions)
            for index, call in enumerate(plan.aggregates):
                if call.argument is None:
                    func = ast.FunctionCall(call.function, (), star=True)
                else:
                    func = ast.FunctionCall(
                        call.function,
                        (_translate(call.argument, mapping),),
                        distinct=call.distinct,
                    )
                items.append(ast.SelectItem(func, names[offset + index]))
            return (
                ast.Select(items=items, from_item=item, group_by=group_exprs),
                names,
            )
        if isinstance(plan, SortOp):
            # ORDER BY must not be set already, and must precede any LIMIT.
            select, names = self._select_over(
                plan.child, conflict=lambda s: bool(s.order_by) or s.limit is not None
            )
            mapping = {
                column.column_id: ast.ColumnRef(None, name)
                for column, name in zip(plan.child.output_columns, names)
            }
            select.order_by = [
                ast.OrderItem(_translate(expr, mapping), ascending)
                for expr, ascending in plan.keys
            ]
            return select, names
        if isinstance(plan, LimitOp):
            # Merging onto an ORDER BY select is required (top-N); only an
            # existing LIMIT forces a wrapper.
            select, names = self._select_over(
                plan.child, conflict=lambda s: s.limit is not None
            )
            select.limit = plan.limit if plan.limit is not None else _SQL_MAX_LIMIT
            select.offset = plan.offset or None
            return select, names
        if isinstance(plan, DistinctOp):
            select, names = self._select_over(
                plan.child,
                conflict=lambda s: s.distinct or bool(s.order_by) or s.limit is not None,
            )
            select.distinct = True
            return select, names
        if isinstance(plan, (ScanOp, JoinOp)):
            item, mapping = self.relation(plan)
            names = _output_names(plan.output_columns)
            items = [
                ast.SelectItem(mapping[column.column_id], alias)
                for column, alias in zip(plan.output_columns, names)
            ]
            return ast.Select(items=items, from_item=item), names
        raise PlanError(f"cannot compile plan node {type(plan).__name__} to SQL")

    def _select_over(
        self,
        plan: LogicalPlan,
        conflict: Callable[[ast.Select], bool],
    ) -> Tuple[ast.Select, List[str]]:
        """A *mutable* Select for ``plan``; wraps it in a derived table when
        ``conflict`` says the clause we are about to set would collide."""
        if isinstance(plan, UnionOp):
            select, names = self._wrap_statement(plan)
        else:
            select, names = self._select(plan)
        if conflict(select):
            return self._wrap_select(select, names)
        return select, names

    def _wrap_statement(self, plan: LogicalPlan) -> Tuple[ast.Select, List[str]]:
        statement, names = self.statement(plan)
        if isinstance(statement, ast.Select):
            return statement, names
        alias = self._fresh_alias("q")
        items = [
            ast.SelectItem(ast.ColumnRef(alias, name), name) for name in names
        ]
        return (
            ast.Select(items=items, from_item=ast.SubqueryRef(statement, alias)),
            names,
        )

    def _wrap_select(
        self, select: ast.Select, names: List[str]
    ) -> Tuple[ast.Select, List[str]]:
        alias = self._fresh_alias("q")
        items = [
            ast.SelectItem(ast.ColumnRef(alias, name), name) for name in names
        ]
        return (
            ast.Select(items=items, from_item=ast.SubqueryRef(select, alias)),
            names,
        )


#: LIMIT must carry a value when only OFFSET is wanted; SQLite accepts -1 but
#: the portable spelling is a huge limit.
_SQL_MAX_LIMIT = 2**62


def _output_names(columns: List[RelColumn]) -> List[str]:
    """Positionally unique output aliases (c0, c1, ...).

    Deterministic names keep derived-table wiring trivial and dodge
    collisions between duplicate user-facing column names.
    """
    return [f"c{i}" for i in range(len(columns))]


def _translate(expr: ast.Expr, mapping: Dict[int, ast.Expr]) -> ast.Expr:
    """Replace BoundRefs with the mapped syntactic expressions."""

    def substitute(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.BoundRef):
            target = mapping.get(node.column.column_id)
            if target is None:
                raise PlanError(
                    f"fragment references column {node.column.name!r} that is "
                    "not produced inside the fragment"
                )
            return target
        return None

    return ast.transform_expression(expr, substitute)

"""In-memory table source.

Models a cooperative departmental record manager: it can filter, project,
aggregate, and limit its own tables, but cannot join (each request touches
one record type) — a common envelope for non-relational stores of the era.

Also the workhorse test double: tables are loaded directly from Python
rows with type validation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..catalog.schema import TableSchema
from ..datatypes import coerce_value
from ..errors import CapabilityError, DuplicateObjectError, SourceError
from ..core.fragments import Fragment, interpret_plan
from ..core.logical import JoinOp, ScanOp
from ..core.pages import Column, Page, paginate_rows, typed_column
from .base import Adapter, SourceCapabilities


class MemorySource(Adapter):
    """A wrapper over plain Python row lists.

    Example::

        crm = MemorySource("crm")
        crm.add_table("customers", schema, rows)
    """

    def __init__(
        self,
        name: str,
        capabilities: Optional[SourceCapabilities] = None,
        page_rows: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        self._tables: Dict[str, TableSchema] = {}
        self._rows: Dict[str, List[Tuple[Any, ...]]] = {}
        # Lazily-built columnar mirror of ``_rows`` (one vector per
        # column), so paged scans serve column slices instead of
        # re-transposing the row store on every request. Eligible
        # INTEGER/FLOAT columns are typed once here (``array`` vectors);
        # slicing an array yields an array, so every page served off the
        # mirror is typed for free. Invalidated on data changes.
        self._columns: Dict[str, List[Column]] = {}
        self._capabilities = capabilities or SourceCapabilities(
            filters=True,
            predicate_ops=frozenset(
                {"=", "<>", "<", "<=", ">", ">=", "AND", "OR", "NOT", "LIKE",
                 "IN", "BETWEEN", "ISNULL"}
            ),
            arithmetic=True,
            functions=frozenset({"UPPER", "LOWER", "LENGTH", "ABS", "COALESCE"}),
            projection=True,
            joins=False,
            aggregation=True,
            sort=False,
            limit=True,
            in_list_max=1000,
        )
        if page_rows is not None:
            # Response page size knob (rows per simulated network message).
            self._capabilities = self._capabilities.restricted(
                page_rows=max(page_rows, 1)
            )

    # -- data loading -----------------------------------------------------------

    def add_table(
        self,
        native_name: str,
        schema: TableSchema,
        rows: Sequence[Sequence[Any]],
    ) -> None:
        """Load a table; every cell is coerced to its declared global type."""
        if native_name in self._tables:
            raise DuplicateObjectError(
                f"source {self.name!r} already has table {native_name!r}"
            )
        coerced: List[Tuple[Any, ...]] = []
        for row_number, row in enumerate(rows):
            if len(row) != len(schema.columns):
                raise SourceError(
                    self.name,
                    f"table {native_name!r} row {row_number} has {len(row)} "
                    f"values, expected {len(schema.columns)}",
                )
            coerced.append(
                tuple(
                    coerce_value(value, column.dtype)
                    for value, column in zip(row, schema.columns)
                )
            )
        self._tables[native_name] = schema
        self._rows[native_name] = coerced
        self._columns.pop(native_name, None)

    def extend_table(self, native_name: str, rows: Sequence[Sequence[Any]]) -> None:
        """Append rows to an existing table (coerced like :meth:`add_table`)."""
        schema = self._native_schema(native_name)
        resolved = self._resolve_name(native_name)
        store = self._rows[resolved]
        self._columns.pop(resolved, None)
        for row in rows:
            store.append(
                tuple(
                    coerce_value(value, column.dtype)
                    for value, column in zip(row, schema.columns)
                )
            )

    def _table_columns(self, resolved: str) -> List[Column]:
        """The columnar mirror of a table, built on first paged scan."""
        columns = self._columns.get(resolved)
        if columns is None:
            schema_columns = self._tables[resolved].columns
            rows = self._rows[resolved]
            if rows:
                transposed: List[List[Any]] = [
                    list(column) for column in zip(*rows)
                ]
            else:
                transposed = [[] for _ in schema_columns]
            columns = [
                typed_column(values, column.dtype)
                for values, column in zip(transposed, schema_columns)
            ]
            self._columns[resolved] = columns
        return columns

    def _resolve_name(self, native_table: str) -> str:
        if native_table in self._rows:
            return native_table
        for name in self._rows:
            if name.lower() == native_table.lower():
                return name
        raise CapabilityError(f"source {self.name!r} has no table {native_table!r}")

    # -- Adapter interface ---------------------------------------------------------

    def tables(self) -> Dict[str, TableSchema]:
        return dict(self._tables)

    def capabilities(self) -> SourceCapabilities:
        return self._capabilities

    def scan(self, native_table: str) -> Iterator[Tuple[Any, ...]]:
        yield from self._rows[self._resolve_name(native_table)]

    def row_count(self, native_table: str) -> Optional[int]:
        return len(self._rows[self._resolve_name(native_table)])

    def execute(self, fragment: Fragment) -> Iterator[Tuple[Any, ...]]:
        if not self._capabilities.joins:
            for node in fragment.plan.walk():
                if isinstance(node, JoinOp):
                    raise CapabilityError(
                        f"source {self.name!r} cannot execute joins"
                    )

        def provide(scan: ScanOp) -> Iterator[Tuple[Any, ...]]:
            mapping = scan.effective_mapping
            assert mapping is not None and scan.table.schema is not None
            native_schema = self._native_schema(mapping.remote_table)
            indices = [
                native_schema.index_of(mapping.remote_column(column.name))
                for column in scan.table.schema.columns
            ]
            rows = self.scan(mapping.remote_table)
            if indices == list(range(len(native_schema.columns))):
                return rows
            return (tuple(row[i] for i in indices) for row in rows)

        return interpret_plan(fragment.plan, provide)

    def execute_pages(self, fragment: Fragment, page_rows: int) -> Iterator[Page]:
        """Paged fragment execution returning native columnar pages.

        Fast path for bare table scans: pages are cut as per-column slices
        of the table's columnar mirror (:meth:`_table_columns`) — no
        per-row transpose at all, and projection reorder is just picking
        which column vectors to slice. Follows the page contract (full
        pages, then one final partial — possibly empty — page)."""
        page_rows = max(page_rows, 1)
        plan = fragment.plan
        # Subclasses that override execute() (fault-injection doubles,
        # instrumented sources) must keep seeing every call: take the slow
        # path through their execute() rather than slicing stored columns.
        overridden = type(self).execute is not MemorySource.execute
        if not overridden and isinstance(plan, ScanOp):
            mapping = plan.effective_mapping
            if mapping is not None and plan.table.schema is not None:
                native_schema = self._native_schema(mapping.remote_table)
                indices = [
                    native_schema.index_of(mapping.remote_column(column.name))
                    for column in plan.table.schema.columns
                ]
                resolved = self._resolve_name(mapping.remote_table)
                columns = self._table_columns(resolved)
                source = [columns[i] for i in indices]
                total = len(self._rows[resolved])
                full = total // page_rows
                for index in range(full + 1):
                    start = index * page_rows
                    stop = min(start + page_rows, total)
                    yield Page(
                        [column[start:stop] for column in source],
                        stop - start,
                    )
                return
        output_columns = fragment.output_columns
        yield from paginate_rows(
            self.execute(fragment),
            page_rows,
            len(output_columns),
            dtypes=[column.dtype for column in output_columns],
        )

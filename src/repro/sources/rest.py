"""Simulated web-service source with paginated responses.

Models an external information service reachable through a constrained
HTTP-style API: simple per-column comparison filters ANDed together, an
optional result limit, small response pages, and *no* projection (the
service always returns whole records). The page size drives the simulated
network's message count, making this the latency-sensitive member of the
federation.

The "service" is backed by in-memory rows; a ``request_log`` records each
logical API call for tests and for demonstrating wrapper behavior.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..catalog.schema import TableSchema
from ..datatypes import coerce_value
from ..errors import CapabilityError, DuplicateObjectError
from ..core.expressions import build_layout, compile_predicate
from ..core.fragments import Fragment
from ..core.logical import FilterOp, LimitOp, ScanOp
from ..core.pages import Page
from ..sql import ast
from .base import Adapter, SourceCapabilities


@dataclass
class ApiRequest:
    """One logical call against the simulated service."""

    table: str
    filters: str
    limit: Optional[int]
    pages: int = 0
    rows: int = 0


class RestSource(Adapter):
    """A paginated filter-and-limit web service.

    Example::

        feed = RestSource("feed", page_rows=100)
        feed.add_table("events", schema, rows)
    """

    def __init__(self, name: str, page_rows: int = 100) -> None:
        super().__init__(name)
        self._tables: Dict[str, TableSchema] = {}
        self._rows: Dict[str, List[Tuple[Any, ...]]] = {}
        self._page_rows = page_rows
        self.request_log: List[ApiRequest] = []

    def add_table(
        self,
        native_name: str,
        schema: TableSchema,
        rows: Sequence[Sequence[Any]],
    ) -> None:
        """Load the service's dataset for one endpoint."""
        if native_name in self._tables:
            raise DuplicateObjectError(
                f"source {self.name!r} already has table {native_name!r}"
            )
        self._tables[native_name] = schema
        self._rows[native_name] = [
            tuple(
                coerce_value(value, column.dtype)
                for value, column in zip(row, schema.columns)
            )
            for row in rows
        ]

    # -- Adapter interface ---------------------------------------------------------

    def tables(self) -> Dict[str, TableSchema]:
        return dict(self._tables)

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(
            filters=True,
            predicate_ops=frozenset({"=", "<>", "<", "<=", ">", ">=", "AND"}),
            arithmetic=False,
            functions=frozenset(),
            projection=False,
            joins=False,
            aggregation=False,
            sort=False,
            limit=True,
            in_list_max=0,
            page_rows=self._page_rows,
        )

    def scan(self, native_table: str) -> Iterator[Tuple[Any, ...]]:
        rows = self._rows.get(native_table)
        if rows is None:
            self._native_schema(native_table)
            return
        yield from rows

    def row_count(self, native_table: str) -> Optional[int]:
        rows = self._rows.get(native_table)
        return len(rows) if rows is not None else None

    def execute(self, fragment: Fragment) -> Iterator[Tuple[Any, ...]]:
        plan = fragment.plan
        limit: Optional[int] = None
        offset = 0
        if isinstance(plan, LimitOp):
            limit, offset = plan.limit, plan.offset
            plan = plan.child
        predicate: Optional[ast.Expr] = None
        if isinstance(plan, FilterOp):
            predicate = plan.predicate
            self._check_predicate(predicate)
            plan = plan.child
        if not isinstance(plan, ScanOp):
            raise CapabilityError(
                f"source {self.name!r} only serves filter+limit requests over "
                "single endpoints"
            )
        scan = plan
        mapping = scan.effective_mapping
        assert mapping is not None and scan.table.schema is not None
        native_schema = self._native_schema(mapping.remote_table)
        indices = [
            native_schema.index_of(mapping.remote_column(column.name))
            for column in scan.table.schema.columns
        ]
        request = ApiRequest(
            table=mapping.remote_table,
            filters="yes" if predicate is not None else "no",
            limit=limit,
        )
        self.request_log.append(request)

        predicate_fn = None
        if predicate is not None:
            layout = build_layout(scan.columns)
            predicate_fn = compile_predicate(predicate, layout)

        emitted = 0
        skipped = 0
        for row in self.scan(mapping.remote_table):
            reordered = tuple(row[i] for i in indices)
            if predicate_fn is not None and not predicate_fn(reordered):
                continue
            if skipped < offset:
                skipped += 1
                continue
            if limit is not None and emitted >= limit:
                break
            emitted += 1
            request.rows += 1
            yield reordered
        request.pages = max(1, -(-request.rows // self._page_rows))

    def execute_pages(self, fragment: Fragment, page_rows: int) -> Iterator[Page]:
        """The service's own pagination: every pull drains one whole API
        response page (zero or more full pages of exactly ``page_rows``
        rows, then exactly one final partial — possibly empty — page),
        transposed into a :class:`Page`. ``request_log`` bookkeeping is
        unchanged: ``rows`` accrue as the underlying request is driven and
        ``pages`` still counts *logical* API pages (``ceil(rows /
        page_rows)``, minimum one), which can differ from wire messages by
        the final empty page.
        """
        page_rows = max(page_rows, 1)
        output = fragment.output_columns
        width = len(output)
        dtypes = [column.dtype for column in output]
        rows = self.execute(fragment)
        while True:
            chunk = list(itertools.islice(rows, page_rows))
            yield Page.from_rows(chunk, width, dtypes)
            if len(chunk) < page_rows:
                return

    def _check_predicate(self, predicate: ast.Expr) -> None:
        """Reject predicate shapes outside the advertised API surface."""
        allowed_ops = {"=", "<>", "<", "<=", ">", ">=", "AND"}
        for node in ast.walk_expression(predicate):
            if isinstance(node, ast.BinaryOp):
                if node.op not in allowed_ops:
                    raise CapabilityError(
                        f"source {self.name!r} does not support operator "
                        f"{node.op!r}"
                    )
            elif not isinstance(node, (ast.BoundRef, ast.Literal)):
                raise CapabilityError(
                    f"source {self.name!r} does not support "
                    f"{type(node).__name__} predicates"
                )

"""Deterministic fault injection for component systems.

A 1989 Global Information System federates *autonomous* sources over a
WAN: sites that are slow, flapping, or simply gone are the normal case.
This module makes every such failure mode a reproducible test fixture
instead of a race: a :class:`FaultPlan` scripts per-source failures
(fail-on-connect, fail-after-N-pages mid-stream outages, deterministic
flapping, seeded probabilistic faults, latency spikes, recovery-after-K),
and a :class:`FaultInjector` enforces the script at the adapter page
boundary — the exact point where the exchange pulls response pages over
the simulated network.

Injection wraps :meth:`~repro.sources.base.Adapter.execute_pages` from the
*outside* (the mediator side of the wire), so adapters need no changes and
every source kind is injectable. Latency spikes are wired through
:class:`~repro.sources.network.SimulatedNetwork` as extra per-message
virtual latency, so they show up in the deterministic transfer ledgers
like any real slow link.

With no plan armed the injector is never consulted and the engine is
byte-for-byte identical to the fault-free build.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from ..errors import CatalogError, SourceError

#: Failure modes an injected call can take.
_CONNECT = "connect"
_MIDSTREAM = "midstream"

#: Real-time sleep hook for straggler faults; tests patch this to observe
#: the injected delays without actually sleeping.
_straggle_sleep = time.sleep


@dataclass(frozen=True)
class FaultSpec:
    """The scripted failure behavior of one source.

    Attributes:
        fail_connect: the first N calls fail before producing any page
            (connection refused / source down at query time).
        fail_after_pages: failing calls die *mid-stream*, after yielding
            this many pages (a source that answers, then drops the link).
            Set alone, every call fails this way until recovery.
        fail_every: deterministic flapping — every k-th call (after the
            ``fail_connect`` prefix) fails; other calls succeed.
        failure_rate: probability in [0, 1] that a call fails, drawn from
            a per-source RNG seeded by the plan (chaos testing).
        recover_after: total injected failures after which the source
            heals and all calls succeed (None = never recovers). This is
            the "flapping with recovery-after-K" knob.
        latency_ms: extra virtual latency added to every message of this
            source (a latency spike, charged through the simulated
            network's ledgers).
        permanent: injected errors are marked non-retryable
            (``SourceError.retryable = False``), so retry budgets are not
            burned on a source that will never answer.
        straggle_ms: **real wall-clock** delay injected before each page
            of a straggling call. Unlike ``latency_ms`` (virtual, ledger
            only) this actually stalls the fetching thread — it is the
            knob that exercises no-progress timeouts and hedged fetches,
            which race wall-clock time.
        straggle_jitter_ms: extra per-page delay drawn uniformly from
            ``[0, straggle_jitter_ms)`` off the source's seeded RNG
            (deterministic per plan seed).
        straggle_after_pages: the first N pages of a straggling call are
            served at full speed; delays start after them (a source that
            answers fast, then bogs down).
        straggle_rate: probability in [0, 1] that a call straggles at
            all, drawn per call from the seeded RNG. 1.0 (the default)
            slows every call; 0.05 models the classic "one request in
            twenty hits the slow path" tail.
    """

    fail_connect: int = 0
    fail_after_pages: Optional[int] = None
    fail_every: int = 0
    failure_rate: float = 0.0
    recover_after: Optional[int] = None
    latency_ms: float = 0.0
    permanent: bool = False
    straggle_ms: float = 0.0
    straggle_jitter_ms: float = 0.0
    straggle_after_pages: int = 0
    straggle_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.fail_connect < 0:
            raise CatalogError(
                f"fault spec: fail_connect must be >= 0 (got {self.fail_connect!r})"
            )
        if self.fail_after_pages is not None and self.fail_after_pages < 0:
            raise CatalogError(
                "fault spec: fail_after_pages must be >= 0 "
                f"(got {self.fail_after_pages!r})"
            )
        if self.fail_every < 0:
            raise CatalogError(
                f"fault spec: fail_every must be >= 0 (got {self.fail_every!r})"
            )
        if not 0.0 <= self.failure_rate <= 1.0:
            raise CatalogError(
                f"fault spec: failure_rate must be in [0, 1] (got {self.failure_rate!r})"
            )
        if self.recover_after is not None and self.recover_after < 0:
            raise CatalogError(
                "fault spec: recover_after must be >= 0 "
                f"(got {self.recover_after!r})"
            )
        if self.latency_ms < 0:
            raise CatalogError(
                f"fault spec: latency_ms must be >= 0 (got {self.latency_ms!r})"
            )
        if self.straggle_ms < 0:
            raise CatalogError(
                f"fault spec: straggle_ms must be >= 0 (got {self.straggle_ms!r})"
            )
        if self.straggle_jitter_ms < 0:
            raise CatalogError(
                "fault spec: straggle_jitter_ms must be >= 0 "
                f"(got {self.straggle_jitter_ms!r})"
            )
        if self.straggle_after_pages < 0:
            raise CatalogError(
                "fault spec: straggle_after_pages must be >= 0 "
                f"(got {self.straggle_after_pages!r})"
            )
        if not 0.0 <= self.straggle_rate <= 1.0:
            raise CatalogError(
                "fault spec: straggle_rate must be in [0, 1] "
                f"(got {self.straggle_rate!r})"
            )

    @property
    def injects_failures(self) -> bool:
        """Does this spec ever fail a call (as opposed to only slowing it)?"""
        return bool(
            self.fail_connect
            or self.fail_every
            or self.failure_rate > 0.0
            or self.fail_after_pages is not None
        )

    @property
    def injects_stragglers(self) -> bool:
        """Does this spec ever stall a call in real wall-clock time?"""
        return (
            self.straggle_ms > 0.0 or self.straggle_jitter_ms > 0.0
        ) and self.straggle_rate > 0.0


#: Keys accepted in a declarative per-source fault spec (config "faults").
FAULT_SPEC_KEYS = (
    "fail_connect",
    "fail_after_pages",
    "fail_every",
    "failure_rate",
    "recover_after",
    "latency_ms",
    "permanent",
    "straggle_ms",
    "straggle_jitter_ms",
    "straggle_after_pages",
    "straggle_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded script of per-source faults for a whole federation.

    Frozen and hashable so it can ride on
    :class:`~repro.core.planner.PlannerOptions` (which is used as a result
    cache key). ``specs`` is a sorted tuple of ``(source, FaultSpec)``
    pairs; use :meth:`of` to build one from keyword arguments.
    """

    specs: Tuple[Tuple[str, FaultSpec], ...] = ()
    seed: int = 0

    @staticmethod
    def of(seed: int = 0, **sources: FaultSpec) -> "FaultPlan":
        """Build a plan from ``source_name=FaultSpec(...)`` keywords."""
        return FaultPlan(
            specs=tuple(sorted((name.lower(), spec) for name, spec in sources.items())),
            seed=seed,
        )

    @staticmethod
    def from_config(config: Dict[str, Any]) -> "FaultPlan":
        """Parse the declarative ``faults`` config section.

        Shape::

            {"seed": 7,
             "sources": {"erp": {"fail_connect": 2, "latency_ms": 50.0}}}

        Every key is validated; unknown keys are rejected so a typo cannot
        silently disable a scripted fault.
        """
        if not isinstance(config, dict):
            raise CatalogError(
                f"'faults' config must be a mapping (got {type(config).__name__})"
            )
        unknown = sorted(set(config) - {"seed", "sources"})
        if unknown:
            raise CatalogError(
                f"unknown config key(s) {unknown} in faults; "
                "allowed: ['seed', 'sources']"
            )
        seed = config.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise CatalogError(
                f"faults config: 'seed' must be an integer (got {seed!r})"
            )
        sources = config.get("sources", {})
        if not isinstance(sources, dict):
            raise CatalogError(
                "faults config: 'sources' must be a mapping "
                f"(got {type(sources).__name__})"
            )
        specs = {}
        for name, spec in sources.items():
            if not isinstance(spec, dict):
                raise CatalogError(
                    f"faults config: source {name!r} spec must be a mapping "
                    f"(got {type(spec).__name__})"
                )
            bad = sorted(set(spec) - set(FAULT_SPEC_KEYS))
            if bad:
                raise CatalogError(
                    f"unknown config key(s) {bad} in faults source {name!r}; "
                    f"allowed: {sorted(FAULT_SPEC_KEYS)}"
                )
            specs[name] = FaultSpec(**spec)
        return FaultPlan.of(seed=seed, **specs)

    def spec_for(self, source_name: str) -> Optional[FaultSpec]:
        key = source_name.lower()
        for name, spec in self.specs:
            if name == key:
                return spec
        return None

    @property
    def faulted_sources(self) -> Tuple[str, ...]:
        """Sources whose spec can fail calls (latency-only specs excluded)."""
        return tuple(
            name for name, spec in self.specs if spec.injects_failures
        )


class _SourceFaultState:
    """Mutable per-source fault bookkeeping (calls seen, failures injected).

    The decision for each call depends only on this source's own call
    counter and its seeded RNG, so a plan replays identically regardless of
    how calls to *other* sources interleave — the property that keeps
    parallel-scheduler chaos runs reproducible.
    """

    __slots__ = ("spec", "calls", "failures", "_rng", "_straggle_rng", "_lock")

    def __init__(self, spec: FaultSpec, seed: int, source: str) -> None:
        self.spec = spec
        self.calls = 0
        self.failures = 0
        self._rng = random.Random(f"{seed}:{source.lower()}")
        # Straggler draws come off their own seeded stream so arming (or
        # tuning) stragglers never shifts the *failure* schedule a seed
        # produces — existing chaos scripts replay unchanged.
        self._straggle_rng = random.Random(f"{seed}:{source.lower()}:straggle")
        self._lock = threading.Lock()

    def next_call(self) -> Optional[Tuple[str, int]]:
        """Decide this call's fate: None (succeed) or (mode, pages).

        ``mode`` is ``"connect"`` (fail before any page) or ``"midstream"``
        (fail after ``pages`` pages).
        """
        spec = self.spec
        with self._lock:
            self.calls += 1
            if (
                spec.recover_after is not None
                and self.failures >= spec.recover_after
            ):
                # Healed: still counted (snapshots show post-recovery
                # traffic) but never failed again.
                return None
            mode: Optional[Tuple[str, int]] = None
            if self.calls <= spec.fail_connect:
                mode = (_CONNECT, 0)
            elif spec.fail_every > 0:
                if (self.calls - spec.fail_connect) % spec.fail_every == 0:
                    mode = self._failure_mode()
            elif spec.failure_rate > 0.0:
                if self._rng.random() < spec.failure_rate:
                    mode = self._failure_mode()
            elif spec.fail_after_pages is not None:
                mode = (_MIDSTREAM, spec.fail_after_pages)
            if mode is not None:
                self.failures += 1
            return mode

    def _failure_mode(self) -> Tuple[str, int]:
        if self.spec.fail_after_pages is not None:
            return (_MIDSTREAM, self.spec.fail_after_pages)
        return (_CONNECT, 0)

    def next_straggle(self) -> bool:
        """Decide whether this call takes the slow path (seeded draw)."""
        spec = self.spec
        if not spec.injects_stragglers:
            return False
        if spec.straggle_rate >= 1.0:
            return True
        with self._lock:
            return self._straggle_rng.random() < spec.straggle_rate

    def straggle_delay_ms(self) -> float:
        """Per-page wall-clock delay for a straggling call (base + jitter)."""
        spec = self.spec
        if spec.straggle_jitter_ms <= 0.0:
            return spec.straggle_ms
        with self._lock:
            return spec.straggle_ms + self._straggle_rng.uniform(
                0.0, spec.straggle_jitter_ms
            )


@dataclass
class FaultSnapshot:
    """Observed injection counts for one source (REPL/diagnostics)."""

    calls: int = 0
    failures: int = 0
    spec: FaultSpec = field(default_factory=FaultSpec)


class FaultInjector:
    """Runtime enforcement of one :class:`FaultPlan`.

    One injector holds the mutable per-source state (call counters, seeded
    RNGs); a mediator-level injector persists across queries (so
    recovery-after-K spans queries), while a per-query plan on
    ``PlannerOptions`` gets a fresh injector per execution (so tests
    replay exactly). Thread-safe: scheduler workers consult it
    concurrently.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._states: Dict[str, _SourceFaultState] = {}
        self._lock = threading.Lock()

    def _state_for(self, source_name: str) -> Optional[_SourceFaultState]:
        key = source_name.lower()
        state = self._states.get(key)
        if state is None:
            spec = self.plan.spec_for(key)
            if spec is None:
                return None
            with self._lock:
                state = self._states.setdefault(
                    key, _SourceFaultState(spec, self.plan.seed, key)
                )
        return state

    def latency_penalty_ms(self, source_name: str) -> float:
        """Extra virtual latency per message for this source (0 = none)."""
        spec = self.plan.spec_for(source_name)
        return spec.latency_ms if spec is not None else 0.0

    def execute_pages(
        self, adapter: Any, fragment: Any, page_rows: int
    ) -> Iterator[Any]:
        """The injected adapter page path.

        Yields the adapter's pages, applying the source's scripted fate
        for this call: raise before the first page (connect failure) or
        after N pages (mid-stream outage). Sources without a spec pass
        straight through.
        """
        source = fragment.source_name
        state = self._state_for(source)
        if state is None:
            yield from adapter.execute_pages(fragment, page_rows)
            return
        fate = state.next_call()
        if fate is not None and fate[0] == _CONNECT:
            raise SourceError(
                source,
                f"injected fault: connect failure "
                f"(call {state.calls}, failure {state.failures})",
                retryable=not state.spec.permanent,
            )
        straggling = state.next_straggle()
        produced = 0
        for page in adapter.execute_pages(fragment, page_rows):
            if fate is not None and produced >= fate[1]:
                raise SourceError(
                    source,
                    f"injected fault: mid-stream outage after "
                    f"{produced} page(s) (call {state.calls})",
                    retryable=not state.spec.permanent,
                )
            if straggling and produced >= state.spec.straggle_after_pages:
                # Real wall-clock stall: this is what no-progress timeouts
                # and hedged fetches actually race against.
                _straggle_sleep(state.straggle_delay_ms() / 1000.0)
            yield page
            produced += 1
        if fate is not None:
            # The result was shorter than the scripted cut: the outage
            # still happens (the final page's acknowledgement is lost).
            raise SourceError(
                source,
                f"injected fault: mid-stream outage after "
                f"{produced} page(s) (call {state.calls})",
                retryable=not state.spec.permanent,
            )

    def snapshot(self) -> Dict[str, FaultSnapshot]:
        """Per-source injection counts so far (sources with specs only)."""
        with self._lock:
            states = dict(self._states)
        out = {}
        for name, spec in self.plan.specs:
            state = states.get(name)
            out[name] = FaultSnapshot(
                calls=state.calls if state else 0,
                failures=state.failures if state else 0,
                spec=spec,
            )
        return out

    def reset(self) -> None:
        """Forget all per-source state (counters and RNG positions)."""
        with self._lock:
            self._states.clear()


__all__ = [
    "FAULT_SPEC_KEYS",
    "FaultInjector",
    "FaultPlan",
    "FaultSnapshot",
    "FaultSpec",
]

"""Adapter (wrapper) interface and capability declarations.

A :class:`SourceCapabilities` value is a wrapper's *contract* with the
pushdown planner: it enumerates exactly which plan shapes the source can
evaluate natively. The planner never sends anything outside the envelope;
whatever the source cannot do, the mediator *compensates* for above the
exchange.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, Iterator, Optional, Tuple

from ..catalog.schema import TableSchema
from ..catalog.statistics import TableStatistics
from ..errors import CapabilityError

#: Comparison-ish operators a filter-capable source may declare.
ALL_PREDICATE_OPS = frozenset(
    {"=", "<>", "<", "<=", ">", ">=", "AND", "OR", "NOT", "LIKE", "IN",
     "BETWEEN", "ISNULL"}
)

#: Default page size for streaming fragment results back to the mediator.
DEFAULT_PAGE_ROWS = 1024


@dataclass(frozen=True)
class SourceCapabilities:
    """What one component system can execute natively.

    Attributes:
        filters: the source evaluates row predicates at all.
        predicate_ops: operators allowed inside pushed predicates (a subset
            of :data:`ALL_PREDICATE_OPS`).
        arithmetic: arithmetic (+,-,*,/,%) allowed inside pushed expressions.
        functions: scalar function names the source implements.
        projection: the source returns only requested columns/expressions.
        joins: the source joins its *own* tables (never across sources).
        aggregation: GROUP BY + COUNT/SUM/AVG/MIN/MAX.
        sort: ORDER BY.
        limit: LIMIT/OFFSET.
        in_list_max: maximum literal count in a pushed IN list (0 disables;
            bounds semijoin bind lists).
        key_equality_only: map of native table name → key column, for
            sources that *only* answer equality lookups on a key.
        page_rows: rows per response message (drives network message counts).
    """

    filters: bool = False
    predicate_ops: FrozenSet[str] = frozenset()
    arithmetic: bool = False
    functions: FrozenSet[str] = frozenset()
    projection: bool = False
    joins: bool = False
    aggregation: bool = False
    sort: bool = False
    limit: bool = False
    in_list_max: int = 0
    key_equality_only: Optional[Dict[str, str]] = None
    page_rows: int = DEFAULT_PAGE_ROWS

    def restricted(self, **changes: Any) -> "SourceCapabilities":
        """A copy with some capabilities altered (used by ablation benches)."""
        return replace(self, **changes)

    @staticmethod
    def scan_only(page_rows: int = DEFAULT_PAGE_ROWS) -> "SourceCapabilities":
        """The weakest envelope: full-table scans only."""
        return SourceCapabilities(page_rows=page_rows)

    @staticmethod
    def full_sql(page_rows: int = DEFAULT_PAGE_ROWS, in_list_max: int = 500) -> "SourceCapabilities":
        """The strongest envelope (a cooperative relational DBMS)."""
        from ..sql.functions import scalar_names

        return SourceCapabilities(
            filters=True,
            predicate_ops=ALL_PREDICATE_OPS,
            arithmetic=True,
            functions=frozenset(scalar_names()),
            projection=True,
            joins=True,
            aggregation=True,
            sort=True,
            limit=True,
            in_list_max=in_list_max,
            page_rows=page_rows,
        )


class Adapter(abc.ABC):
    """Wrapper base class for component information systems.

    Subclasses implement the native-side of fragment execution. The
    mediator interacts only through:

    * :meth:`tables` — native table schemas (native names/column names);
    * :meth:`capabilities` — the pushdown envelope;
    * :meth:`execute` — run a fragment, yield global-typed row tuples;
    * :meth:`execute_pages` — the same result as response pages (what the
      exchange actually drains and charges; default chunks ``execute``);
    * :meth:`scan` — full scan of one native table (ANALYZE, weak sources).
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def tables(self) -> Dict[str, TableSchema]:
        """Native tables, keyed by native name (case-sensitive as stored)."""

    @abc.abstractmethod
    def capabilities(self) -> SourceCapabilities:
        """The source's declared pushdown envelope."""

    @abc.abstractmethod
    def execute(self, fragment: "Fragment") -> Iterator[Tuple[Any, ...]]:
        """Execute a fragment within the capability envelope.

        The pushdown planner guarantees the fragment fits
        :meth:`capabilities`; adapters should still raise
        :class:`~repro.errors.CapabilityError` on violations (defense against
        planner bugs, and direct API misuse).
        """

    def execute_pages(
        self, fragment: "Fragment", page_rows: int
    ) -> Iterator["Page"]:
        """Execute a fragment and stream its result as columnar pages.

        The page contract (what the exchange charges the simulated network
        for, one message per page): zero or more full pages of exactly
        ``page_rows`` rows, then exactly one final partial page — possibly
        empty. The default implementation chunks :meth:`execute` through
        :func:`repro.core.pages.paginate_rows`; adapters whose native
        protocol is already paged (cursors, paginated APIs) or already
        columnar should override this to align fetches with the page size
        and build :class:`~repro.core.pages.Page` objects directly.
        Adapters may also yield plain row-tuple lists — the exchange
        transposes them — but native pages skip that bridge.

        Fault injection (:mod:`repro.sources.faults`) wraps this method
        from the mediator side — every fetch routes through
        ``ExecutionContext.execute_pages`` — so adapters need no fault
        awareness of their own; scripted connect failures, mid-stream
        outages, and latency spikes apply uniformly to every source kind.
        """
        columns = fragment.output_columns
        return paginate_rows(
            self.execute(fragment),
            max(page_rows, 1),
            len(columns),
            dtypes=[column.dtype for column in columns],
        )

    @abc.abstractmethod
    def scan(self, native_table: str) -> Iterator[Tuple[Any, ...]]:
        """Full scan of one native table in schema column order."""

    def row_count(self, native_table: str) -> Optional[int]:
        """Cheap row-count metadata if the source keeps it (else None)."""
        return None

    def table_statistics(self, native_table: str) -> Optional[TableStatistics]:
        """Source-maintained statistics, if any (else the mediator ANALYZEs)."""
        return None

    def _native_schema(self, native_table: str) -> TableSchema:
        """Schema lookup helper with a capability-flavored error."""
        schema = self.tables().get(native_table)
        if schema is None:
            for name, candidate in self.tables().items():
                if name.lower() == native_table.lower():
                    return candidate
            raise CapabilityError(
                f"source {self.name!r} has no table {native_table!r}"
            )
        return schema


# Imported at the bottom to avoid a cycle: fragments reference logical plans,
# which live in core; core imports sources only for typing.
from ..core.fragments import Fragment  # noqa: E402  (re-export for adapters)
from ..core.pages import Page, paginate_rows  # noqa: E402  (re-export)

__all__ = [
    "Adapter",
    "SourceCapabilities",
    "Fragment",
    "Page",
    "ALL_PREDICATE_OPS",
    "DEFAULT_PAGE_ROWS",
    "paginate_rows",
]

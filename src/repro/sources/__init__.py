"""Source adapters (wrappers) for component information systems.

Each adapter presents an autonomous system to the mediator through a narrow
interface: native table schemas, a declared capability envelope, and
fragment execution. The mediator never reaches past the wrapper — that is
the autonomy boundary the 1989 architecture mandates.

Shipped adapters, ordered by capability:

* :class:`~repro.sources.sqlite.SQLiteSource` — full SQL (filters,
  projection, intra-source joins, aggregation, sort, limit);
* :class:`~repro.sources.memory.MemorySource` — filters, projection,
  aggregation, limit (no joins) — models a departmental record manager;
* :class:`~repro.sources.rest.RestSource` — simple per-column predicates +
  limit, paginated responses — models a remote web service;
* :class:`~repro.sources.csvfile.CsvSource` — full scans only — models a
  flat-file archive;
* :class:`~repro.sources.keyvalue.KeyValueSource` — equality lookup on the
  key column only.
"""

from .base import Adapter, SourceCapabilities
from .csvfile import CsvSource
from .faults import FaultInjector, FaultPlan, FaultSnapshot, FaultSpec
from .keyvalue import KeyValueSource
from .memory import MemorySource
from .network import NetworkLink, SimulatedNetwork, TransferMetrics
from .rest import RestSource
from .sqlite import SQLiteSource

__all__ = [
    "Adapter",
    "CsvSource",
    "FaultInjector",
    "FaultPlan",
    "FaultSnapshot",
    "FaultSpec",
    "KeyValueSource",
    "MemorySource",
    "NetworkLink",
    "RestSource",
    "SimulatedNetwork",
    "SourceCapabilities",
    "SQLiteSource",
    "TransferMetrics",
]

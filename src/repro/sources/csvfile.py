"""CSV flat-file source: the federation's weakest member.

Models an archival system that can only hand over whole files: the
capability envelope is scan-only, so the mediator compensates for *all*
filtering, projection, and aggregation. Experiment T3 uses it as the
low end of the pushdown spectrum.

Files live in one directory, one ``<table>.csv`` per table, with a header
row. Empty fields are NULL.
"""

from __future__ import annotations

import csv
import os
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..catalog.schema import TableSchema
from ..datatypes import coerce_value
from ..errors import CapabilityError, SourceError
from ..core.fragments import Fragment
from ..core.logical import ScanOp
from ..core.pages import Page, paginate_rows
from .base import Adapter, SourceCapabilities


class CsvSource(Adapter):
    """A directory of CSV files, one per table.

    Example::

        CsvSource.write_table("/data/archive", "shipments", schema, rows)
        archive = CsvSource("archive", "/data/archive", {"shipments": schema})
    """

    def __init__(
        self,
        name: str,
        directory: str,
        schemas: Dict[str, TableSchema],
        page_rows: int = 4096,
    ) -> None:
        super().__init__(name)
        self._directory = directory
        self._schemas = dict(schemas)
        self._capabilities = SourceCapabilities.scan_only(
            page_rows=max(page_rows, 1)
        )

    @staticmethod
    def write_table(
        directory: str,
        native_name: str,
        schema: TableSchema,
        rows: Sequence[Sequence[Any]],
    ) -> str:
        """Materialize rows as ``<directory>/<native_name>.csv``; returns path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{native_name}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(schema.column_names())
            for row in rows:
                writer.writerow(["" if v is None else _render(v) for v in row])
        return path

    # -- Adapter interface ---------------------------------------------------------

    def tables(self) -> Dict[str, TableSchema]:
        return dict(self._schemas)

    def capabilities(self) -> SourceCapabilities:
        return self._capabilities

    def scan(self, native_table: str) -> Iterator[Tuple[Any, ...]]:
        schema = self._native_schema(native_table)
        path = os.path.join(self._directory, f"{native_table}.csv")
        if not os.path.exists(path):
            raise SourceError(self.name, f"missing file {path!r}")
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                return
            positions = []
            lowered = [h.lower() for h in header]
            for column in schema.columns:
                try:
                    positions.append(lowered.index(column.name.lower()))
                except ValueError:
                    raise SourceError(
                        self.name,
                        f"file {path!r} lacks column {column.name!r}",
                    ) from None
            for record in reader:
                yield tuple(
                    None
                    if record[position] == ""
                    else coerce_value(record[position], column.dtype)
                    for position, column in zip(positions, schema.columns)
                )

    def row_count(self, native_table: str) -> Optional[int]:
        # Counting requires a scan anyway; leave it to ANALYZE.
        return None

    def execute(self, fragment: Fragment) -> Iterator[Tuple[Any, ...]]:
        # Scan-only: the fragment must be a bare table scan.
        if not isinstance(fragment.plan, ScanOp):
            raise CapabilityError(
                f"source {self.name!r} only executes full table scans, got "
                f"{type(fragment.plan).__name__}"
            )
        scan = fragment.plan
        mapping = scan.effective_mapping
        assert mapping is not None and scan.table.schema is not None
        native_schema = self._native_schema(mapping.remote_table)
        indices = [
            native_schema.index_of(mapping.remote_column(column.name))
            for column in scan.table.schema.columns
        ]
        for row in self.scan(mapping.remote_table):
            yield tuple(row[i] for i in indices)

    def execute_pages(self, fragment: Fragment, page_rows: int) -> Iterator[Page]:
        """Page-granular file serving: every pull slices one whole response
        page out of the file stream and transposes it into a
        :class:`Page`. Same page contract as
        :func:`~repro.core.pages.paginate_rows`: zero or more full pages
        of exactly ``page_rows`` rows, then exactly one final partial
        (possibly empty) page.
        """
        columns = fragment.output_columns
        return paginate_rows(
            self.execute(fragment),
            max(page_rows, 1),
            len(columns),
            dtypes=[column.dtype for column in columns],
        )


def _render(value: Any) -> str:
    import datetime

    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)

"""SQLite-backed source: the federation's fully capable relational citizen.

Fragments are compiled to SQLite SQL (via
:mod:`repro.sources.sqlcompile` + the SQLite printer dialect) and executed
natively — the real pushdown path a mediator would use against a remote
DBMS. Values cross the wrapper boundary in SQLite's native representations
(ISO date strings, 0/1 booleans) and are normalized to global types on the
way out, exercising the heterogeneity machinery.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..catalog.schema import TableSchema
from ..datatypes import DataType, coerce_value
from ..errors import CapabilityError, DuplicateObjectError, SourceError
from ..core.fragments import Fragment
from ..core.logical import RelColumn, ScanOp
from ..core.pages import Page, typed_column
from ..sql.printer import SQLitePrinterDialect, print_statement
from .base import Adapter, SourceCapabilities
from .sqlcompile import fragment_to_statement

_SQLITE_TYPES = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.TEXT: "TEXT",
    DataType.BOOLEAN: "INTEGER",
    DataType.DATE: "TEXT",
}


class SQLiteSource(Adapter):
    """A wrapper around a ``sqlite3`` database (in-memory by default).

    Example::

        erp = SQLiteSource("erp")
        erp.load_table("ORDERS", schema, rows)
    """

    def __init__(
        self,
        name: str,
        path: str = ":memory:",
        capabilities: Optional[SourceCapabilities] = None,
    ) -> None:
        super().__init__(name)
        # The fragment scheduler executes fragments from worker threads;
        # sqlite3 objects are not thread-safe, so cross-thread use is
        # allowed at connect time and every cursor runs under the lock.
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        self._tables: Dict[str, TableSchema] = {}
        self._capabilities = capabilities or SourceCapabilities.full_sql()
        self._register_missing_functions()

    def _register_missing_functions(self) -> None:
        """Define the global-dialect functions SQLite lacks natively.

        Dates live as ISO TEXT inside SQLite, so the date-part functions
        operate on strings here.
        """

        def year(value: Optional[str]) -> Optional[int]:
            return int(value[0:4]) if value is not None else None

        def month(value: Optional[str]) -> Optional[int]:
            return int(value[5:7]) if value is not None else None

        def day(value: Optional[str]) -> Optional[int]:
            return int(value[8:10]) if value is not None else None

        def ceil_(value):
            if value is None:
                return None
            import math

            return type(value)(math.ceil(value))

        def floor_(value):
            if value is None:
                return None
            import math

            return type(value)(math.floor(value))

        def mod_(a, b):
            if a is None or b is None or b == 0:
                return None
            return a - b * int(a / b)

        register = self._connection.create_function
        register("YEAR", 1, year, deterministic=True)
        register("MONTH", 1, month, deterministic=True)
        register("DAY", 1, day, deterministic=True)
        register("CEIL", 1, ceil_, deterministic=True)
        register("FLOOR", 1, floor_, deterministic=True)
        register("MOD", 2, mod_, deterministic=True)

    # -- data loading -----------------------------------------------------------

    def load_table(
        self,
        native_name: str,
        schema: TableSchema,
        rows: Sequence[Sequence[Any]] = (),
    ) -> None:
        """Create and populate a native table from Python rows."""
        if native_name in self._tables:
            raise DuplicateObjectError(
                f"source {self.name!r} already has table {native_name!r}"
            )
        columns_sql = ", ".join(
            f'"{column.name}" {_SQLITE_TYPES[column.dtype]}'
            for column in schema.columns
        )
        with self._lock:
            self._connection.execute(
                f'CREATE TABLE "{native_name}" ({columns_sql})'
            )
            if rows:
                placeholders = ", ".join("?" for _ in schema.columns)
                self._connection.executemany(
                    f'INSERT INTO "{native_name}" VALUES ({placeholders})',
                    [
                        tuple(
                            _to_sqlite(coerce_value(value, column.dtype))
                            for value, column in zip(row, schema.columns)
                        )
                        for row in rows
                    ],
                )
            self._connection.commit()
        self._tables[native_name] = schema

    def declare_table(self, native_name: str, schema: TableSchema) -> None:
        """Declare the global-typed schema of a pre-existing native table."""
        if native_name in self._tables:
            raise DuplicateObjectError(
                f"source {self.name!r} already declares table {native_name!r}"
            )
        self._tables[native_name] = schema

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (tests / advanced loading)."""
        return self._connection

    # -- Adapter interface ---------------------------------------------------------

    def tables(self) -> Dict[str, TableSchema]:
        return dict(self._tables)

    def capabilities(self) -> SourceCapabilities:
        return self._capabilities

    #: Rows pulled per lock acquisition when streaming query results.
    _FETCH_CHUNK = 512

    def _stream(self, sql: str) -> Iterator[Tuple[Any, ...]]:
        """Run ``sql`` and stream its rows, holding the connection lock only
        while actually touching the cursor (concurrent fragments from the
        scheduler share one sqlite3 connection)."""
        with self._lock:
            cursor = self._connection.execute(sql)
        while True:
            with self._lock:
                chunk = cursor.fetchmany(self._FETCH_CHUNK)
            if not chunk:
                return
            yield from chunk

    def scan(self, native_table: str) -> Iterator[Tuple[Any, ...]]:
        schema = self._native_schema(native_table)
        columns_sql = ", ".join(f'"{column.name}"' for column in schema.columns)
        for row in self._stream(
            f'SELECT {columns_sql} FROM "{native_table}"'
        ):
            yield tuple(
                _from_sqlite(value, column.dtype)
                for value, column in zip(row, schema.columns)
            )

    def row_count(self, native_table: str) -> Optional[int]:
        self._native_schema(native_table)  # existence check
        with self._lock:
            cursor = self._connection.execute(
                f'SELECT COUNT(*) FROM "{native_table}"'
            )
            return int(cursor.fetchone()[0])

    def execute(self, fragment: Fragment) -> Iterator[Tuple[Any, ...]]:
        sql = self.compile_fragment(fragment)
        try:
            stream = self._stream(sql)
            first = next(stream, None)
        except sqlite3.Error as exc:
            raise SourceError(self.name, f"{exc} (sql: {sql})") from exc
        output = fragment.output_columns

        def rows():
            if first is not None:
                yield first
            yield from stream

        for row in rows():
            yield tuple(
                _from_sqlite(value, column.dtype)
                for value, column in zip(row, output)
            )

    def execute_pages(self, fragment: Fragment, page_rows: int) -> Iterator[Page]:
        """Page-aligned columnar fragment execution: ``fetchmany(page_rows)``
        per response page, transposed once into :class:`Page` column
        vectors with per-column SQLite→global value normalization. One
        cursor fetch produces exactly one charged page instead of
        re-chunking a row stream. Follows the page contract: full pages,
        then one final partial (possibly empty) page.
        """
        page_rows = max(page_rows, 1)
        sql = self.compile_fragment(fragment)
        output = fragment.output_columns
        try:
            with self._lock:
                cursor = self._connection.execute(sql)
                chunk = cursor.fetchmany(page_rows)
        except sqlite3.Error as exc:
            raise SourceError(self.name, f"{exc} (sql: {sql})") from exc
        while True:
            if chunk:
                page = Page(
                    [
                        typed_column(
                            [_from_sqlite(value, column.dtype) for value in raw],
                            column.dtype,
                        )
                        for raw, column in zip(zip(*chunk), output)
                    ],
                    len(chunk),
                )
            else:  # final empty page keeps its width
                page = Page([[] for _ in output], 0)
            if len(chunk) < page_rows:
                yield page  # final partial (possibly empty) page
                return
            yield page
            with self._lock:
                chunk = cursor.fetchmany(page_rows)

    def compile_fragment(self, fragment: Fragment) -> str:
        """The native SQL this wrapper runs for a fragment (EXPLAIN surface)."""

        def naming(scan: ScanOp):
            mapping = scan.effective_mapping
            assert mapping is not None
            if mapping.remote_table not in self._tables and not any(
                name.lower() == mapping.remote_table.lower() for name in self._tables
            ):
                raise CapabilityError(
                    f"source {self.name!r} has no table {mapping.remote_table!r}"
                )

            def column_namer(column: RelColumn) -> str:
                return mapping.remote_column(column.name)

            return mapping.remote_table, column_namer

        statement = fragment_to_statement(fragment.plan, naming)
        return print_statement(statement, SQLitePrinterDialect())


def _to_sqlite(value: Any) -> Any:
    """Global value → SQLite storage representation."""
    import datetime

    if isinstance(value, bool):
        return int(value)
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def _from_sqlite(value: Any, dtype: DataType) -> Any:
    """SQLite value → global value for a declared column type."""
    if value is None:
        return None
    if dtype == DataType.BOOLEAN:
        return bool(value)
    if dtype == DataType.DATE:
        return coerce_value(value, DataType.DATE)
    if dtype == DataType.FLOAT and isinstance(value, int):
        return float(value)
    return value

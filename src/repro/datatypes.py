"""The mediator's global type system.

Component information systems each have their own native types; the global
schema normalizes them to a small lattice that every wrapper knows how to
translate into. The lattice deliberately mirrors what a 1989-era federation
could agree on: integers, floats, decimals collapsed to float, strings,
booleans, and dates.

Coercion follows SQL semantics: ``INTEGER`` widens to ``FLOAT``; ``NULL``
(the type of a bare NULL literal) unifies with anything; everything else
requires an exact match or an explicit CAST.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Optional

from .errors import TypeCheckError


class DataType(enum.Enum):
    """Global schema data types."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    NULL = "NULL"  # type of the bare NULL literal; unifies with anything

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_NUMERIC = {DataType.INTEGER, DataType.FLOAT}

#: Python classes accepted for each global type (NULL accepts only None).
_PYTHON_CLASSES = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (float, int),
    DataType.TEXT: (str,),
    DataType.BOOLEAN: (bool,),
    DataType.DATE: (datetime.date,),
}


def is_numeric(dtype: DataType) -> bool:
    """Return True for types that participate in arithmetic."""
    return dtype in _NUMERIC


def is_comparable(left: DataType, right: DataType) -> bool:
    """Return True if values of the two types may be compared with <, =, etc."""
    if DataType.NULL in (left, right):
        return True
    if left == right:
        return True
    return left in _NUMERIC and right in _NUMERIC


def unify(left: DataType, right: DataType) -> DataType:
    """Least upper bound of two types, for CASE/COALESCE/set operations.

    Raises :class:`TypeCheckError` when the types have no common supertype.
    """
    if left == right:
        return left
    if left == DataType.NULL:
        return right
    if right == DataType.NULL:
        return left
    if left in _NUMERIC and right in _NUMERIC:
        return DataType.FLOAT
    raise TypeCheckError(f"cannot unify types {left} and {right}")


def arithmetic_result(left: DataType, right: DataType, operator: str) -> DataType:
    """Result type of a binary arithmetic expression.

    Division always yields FLOAT (SQL float division); other operators yield
    INTEGER only when both operands are INTEGER.
    """
    if left == DataType.NULL or right == DataType.NULL:
        # NULL propagates; pick the non-null side's numeric type if any.
        other = right if left == DataType.NULL else left
        if other == DataType.NULL:
            return DataType.NULL
        left = right = other
    if not (is_numeric(left) and is_numeric(right)):
        raise TypeCheckError(
            f"operator {operator!r} requires numeric operands, got {left} and {right}"
        )
    if operator == "/":
        return DataType.FLOAT
    if left == DataType.INTEGER and right == DataType.INTEGER:
        return DataType.INTEGER
    return DataType.FLOAT


def type_of_value(value: Any) -> DataType:
    """Infer the global type of a Python value (used by literals and adapters)."""
    if value is None:
        return DataType.NULL
    if isinstance(value, bool):  # must precede int: bool is an int subclass
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.TEXT
    if isinstance(value, datetime.datetime):
        raise TypeCheckError("datetime values are not supported; use datetime.date")
    if isinstance(value, datetime.date):
        return DataType.DATE
    raise TypeCheckError(f"unsupported Python value type: {type(value).__name__}")


def conforms(value: Any, dtype: DataType) -> bool:
    """Check that a Python value is acceptable for a column of type ``dtype``.

    NULLs are acceptable for every type (nullability is not modeled per
    column; the 1989 federation could not rely on sources enforcing it).
    """
    if value is None:
        return True
    if dtype == DataType.NULL:
        return False
    if dtype == DataType.INTEGER and isinstance(value, bool):
        return False
    if dtype == DataType.FLOAT and isinstance(value, bool):
        return False
    if dtype == DataType.DATE and isinstance(value, datetime.datetime):
        return False
    return isinstance(value, _PYTHON_CLASSES[dtype])


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce a Python value to type ``dtype``, mirroring wrapper normalization.

    Wrappers call this on every cell a source returns so heterogeneous native
    representations (e.g. SQLite returning ISO date strings) surface as
    uniform global values. Raises :class:`TypeCheckError` on impossible
    coercions.
    """
    if value is None:
        return None
    if dtype == DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise TypeCheckError(f"cannot coerce {value!r} to INTEGER") from exc
        raise TypeCheckError(f"cannot coerce {value!r} to INTEGER")
    if dtype == DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise TypeCheckError(f"cannot coerce {value!r} to FLOAT") from exc
        raise TypeCheckError(f"cannot coerce {value!r} to FLOAT")
    if dtype == DataType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return str(value)
        if isinstance(value, datetime.date):
            return value.isoformat()
        raise TypeCheckError(f"cannot coerce {value!r} to TEXT")
    if dtype == DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise TypeCheckError(f"cannot coerce {value!r} to BOOLEAN")
    if dtype == DataType.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeCheckError(f"cannot coerce {value!r} to DATE") from exc
        raise TypeCheckError(f"cannot coerce {value!r} to DATE")
    raise TypeCheckError(f"cannot coerce to {dtype}")


def parse_type_name(name: str) -> DataType:
    """Resolve a type name as written in SQL (CAST target) or mapping files."""
    normalized = name.strip().upper()
    aliases = {
        "INT": DataType.INTEGER,
        "INTEGER": DataType.INTEGER,
        "BIGINT": DataType.INTEGER,
        "SMALLINT": DataType.INTEGER,
        "FLOAT": DataType.FLOAT,
        "REAL": DataType.FLOAT,
        "DOUBLE": DataType.FLOAT,
        "DECIMAL": DataType.FLOAT,
        "NUMERIC": DataType.FLOAT,
        "TEXT": DataType.TEXT,
        "STRING": DataType.TEXT,
        "VARCHAR": DataType.TEXT,
        "CHAR": DataType.TEXT,
        "BOOLEAN": DataType.BOOLEAN,
        "BOOL": DataType.BOOLEAN,
        "DATE": DataType.DATE,
    }
    if normalized in aliases:
        return aliases[normalized]
    raise TypeCheckError(f"unknown type name: {name!r}")


#: Estimated wire width in bytes per value, used by the network cost model.
_WIRE_WIDTHS = {
    DataType.INTEGER: 8,
    DataType.FLOAT: 8,
    DataType.BOOLEAN: 1,
    DataType.DATE: 4,
    DataType.NULL: 1,
}

#: Average assumed width of TEXT values when no statistics are available.
DEFAULT_TEXT_WIDTH = 24


def wire_width(dtype: DataType, avg_text_width: Optional[float] = None) -> float:
    """Bytes a single value of ``dtype`` occupies on the simulated wire."""
    if dtype == DataType.TEXT:
        return avg_text_width if avg_text_width is not None else DEFAULT_TEXT_WIDTH
    return _WIRE_WIDTHS[dtype]

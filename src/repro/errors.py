"""Exception hierarchy for the GIS mediator.

Every error raised by the library derives from :class:`GISError`, so client
code can catch a single base class. Subclasses partition failures by pipeline
stage: lexing/parsing, binding/analysis, planning, execution, and the
source-adapter boundary.
"""

from __future__ import annotations


class GISError(Exception):
    """Base class for all errors raised by the mediator."""


class ParseError(GISError):
    """The SQL text could not be tokenized or parsed.

    Carries the position of the offending token so callers can point at it.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(GISError):
    """Name resolution or semantic analysis failed.

    Raised for unknown tables/columns, ambiguous references, aggregate
    misuse, and similar semantic violations.
    """


class TypeCheckError(BindError):
    """An expression's operand types are incompatible and not coercible."""


class CatalogError(GISError):
    """The global catalog rejected a registration or lookup."""


class DuplicateObjectError(CatalogError):
    """A table, view, or source with the same name is already registered."""


class UnknownObjectError(CatalogError):
    """A referenced table, view, or source does not exist."""


class PlanError(GISError):
    """The optimizer could not produce a plan for a bound query."""


class CapabilityError(PlanError):
    """A fragment was handed to a source that cannot execute it.

    This indicates a mediator bug (the pushdown planner must never emit an
    unsupported fragment) or a direct misuse of an adapter's API.
    """


class ExecutionError(GISError):
    """A runtime failure while evaluating a physical plan."""


class SourceError(ExecutionError):
    """A source adapter failed while executing a fragment.

    Wraps the underlying adapter exception; the originating source name is
    kept so federated failures can be attributed to a site.
    """

    def __init__(self, source_name: str, message: str) -> None:
        self.source_name = source_name
        super().__init__(f"source {source_name!r}: {message}")

"""Exception hierarchy for the GIS mediator.

Every error raised by the library derives from :class:`GISError`, so client
code can catch a single base class. Subclasses partition failures by pipeline
stage: lexing/parsing, binding/analysis, planning, execution, and the
source-adapter boundary.
"""

from __future__ import annotations


class GISError(Exception):
    """Base class for all errors raised by the mediator."""


class ParseError(GISError):
    """The SQL text could not be tokenized or parsed.

    Carries the position of the offending token so callers can point at it.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(GISError):
    """Name resolution or semantic analysis failed.

    Raised for unknown tables/columns, ambiguous references, aggregate
    misuse, and similar semantic violations.
    """


class TypeCheckError(BindError):
    """An expression's operand types are incompatible and not coercible."""


class CatalogError(GISError):
    """The global catalog rejected a registration or lookup."""


class DuplicateObjectError(CatalogError):
    """A table, view, or source with the same name is already registered."""


class UnknownObjectError(CatalogError):
    """A referenced table, view, or source does not exist."""


class PlanError(GISError):
    """The optimizer could not produce a plan for a bound query."""


class CapabilityError(PlanError):
    """A fragment was handed to a source that cannot execute it.

    This indicates a mediator bug (the pushdown planner must never emit an
    unsupported fragment) or a direct misuse of an adapter's API.
    """


class ExecutionError(GISError):
    """A runtime failure while evaluating a physical plan."""


class SourceError(ExecutionError):
    """A source adapter failed while executing a fragment.

    Wraps the underlying adapter exception; the originating source name is
    kept so federated failures can be attributed to a site.

    ``retryable`` classifies the failure: transient faults (connection
    drops, timeouts, flapping sources) default to True and may be
    re-issued by the retry machinery; permanent faults (authentication
    rejections, schema drift, decommissioned sites) should be raised with
    ``retryable=False`` so the mediator stops burning retry budget on a
    source that will never answer.
    """

    def __init__(
        self, source_name: str, message: str, retryable: bool = True
    ) -> None:
        self.source_name = source_name
        self.retryable = retryable
        super().__init__(f"source {source_name!r}: {message}")


class QueryTimeoutError(ExecutionError):
    """A query exceeded its deadline budget and was cancelled cleanly.

    Raised cooperatively at page boundaries and retry decisions; carries
    enough attribution to say *where* the budget went: the source being
    waited on when the deadline fired (if any) and the rows each source
    had shipped so far.
    """

    def __init__(
        self,
        budget_ms: float,
        elapsed_ms: float,
        source_name: "str | None" = None,
        per_source_rows: "dict | None" = None,
    ) -> None:
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms
        self.source_name = source_name
        self.per_source_rows = dict(per_source_rows or {})
        message = (
            f"query exceeded its deadline of {budget_ms:.0f} ms "
            f"(elapsed {elapsed_ms:.0f} ms)"
        )
        if source_name:
            message += f" while waiting on source {source_name!r}"
        if self.per_source_rows:
            shipped = ", ".join(
                f"{source}={rows}"
                for source, rows in sorted(self.per_source_rows.items())
            )
            message += f"; rows shipped so far: {shipped}"
        super().__init__(message)


class ServerError(GISError):
    """Base class for query-service (serving layer) failures."""


class ServerOverloadedError(ServerError):
    """Admission control rejected a request — backpressure, not failure.

    Raised when a tenant's bounded admission queue is full (or the tenant
    exceeded its configured pending limit). Always retryable: the client
    should back off and resubmit; the server never queues unboundedly on
    its behalf.
    """

    def __init__(
        self,
        tenant: str,
        queued: int,
        limit: int,
        message: "str | None" = None,
    ) -> None:
        self.tenant = tenant
        self.queued = queued
        self.limit = limit
        self.retryable = True
        super().__init__(
            message
            or (
                f"tenant {tenant!r} overloaded: {queued} request(s) queued "
                f"(limit {limit}); retry with backoff"
            )
        )


class ProtocolError(ServerError):
    """A malformed or out-of-order request on the serving protocol."""

"""``python -m repro`` — the interactive federation shell."""

import sys

from .repl import main

if __name__ == "__main__":
    sys.exit(main())
